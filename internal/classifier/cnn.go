package classifier

import (
	"errors"
	"math"
	"math/rand"
)

// CNN is a compact 1-D convolutional network:
//
//	input (L) -> conv(k=9, C1 ch) -> ReLU -> maxpool(4)
//	          -> conv(k=5, C1->C2) -> ReLU -> maxpool(4)
//	          -> flatten -> fully connected -> logits
//
// trained with SGD + momentum on softmax cross-entropy. It is the working
// stand-in for the paper's ResNet18 on 257-point ULI traces.
type CNN struct {
	inLen   int
	classes int

	c1, c2 int // channel widths
	k1, k2 int // kernel sizes
	p1, p2 int // pool factors

	w1 [][]float64 // [c1][k1]
	b1 []float64
	w2 [][][]float64 // [c2][c1][k2]
	b2 []float64
	wf [][]float64 // [classes][flat]
	bf []float64

	std *Standardizer

	// momentum buffers
	mw1 [][]float64
	mb1 []float64
	mw2 [][][]float64
	mb2 []float64
	mwf [][]float64
	mbf []float64
}

// CNNConfig controls training.
type CNNConfig struct {
	Epochs   int
	LR       float64
	Momentum float64
	Seed     int64
	C1, C2   int
}

// DefaultCNNConfig works well for the Fig 13 problem.
func DefaultCNNConfig() CNNConfig {
	return CNNConfig{Epochs: 40, LR: 0.003, Momentum: 0.9, Seed: 1, C1: 8, C2: 16}
}

// NewCNN builds an untrained network for traces of length inLen.
func NewCNN(inLen, classes int, cfg CNNConfig) *CNN {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &CNN{
		inLen: inLen, classes: classes,
		c1: cfg.C1, c2: cfg.C2, k1: 9, k2: 5, p1: 4, p2: 4,
	}
	if n.c1 == 0 {
		n.c1 = 8
	}
	if n.c2 == 0 {
		n.c2 = 16
	}
	he := func(fanIn int) float64 { return math.Sqrt(2.0 / float64(fanIn)) }
	n.w1 = make([][]float64, n.c1)
	n.mw1 = make([][]float64, n.c1)
	for c := range n.w1 {
		n.w1[c] = make([]float64, n.k1)
		n.mw1[c] = make([]float64, n.k1)
		for i := range n.w1[c] {
			n.w1[c][i] = rng.NormFloat64() * he(n.k1)
		}
	}
	n.b1 = make([]float64, n.c1)
	n.mb1 = make([]float64, n.c1)
	n.w2 = make([][][]float64, n.c2)
	n.mw2 = make([][][]float64, n.c2)
	for o := range n.w2 {
		n.w2[o] = make([][]float64, n.c1)
		n.mw2[o] = make([][]float64, n.c1)
		for c := range n.w2[o] {
			n.w2[o][c] = make([]float64, n.k2)
			n.mw2[o][c] = make([]float64, n.k2)
			for i := range n.w2[o][c] {
				n.w2[o][c][i] = rng.NormFloat64() * he(n.c1*n.k2)
			}
		}
	}
	n.b2 = make([]float64, n.c2)
	n.mb2 = make([]float64, n.c2)
	flat := n.flatLen()
	n.wf = make([][]float64, classes)
	n.mwf = make([][]float64, classes)
	for c := range n.wf {
		n.wf[c] = make([]float64, flat)
		n.mwf[c] = make([]float64, flat)
		for i := range n.wf[c] {
			n.wf[c][i] = rng.NormFloat64() * he(flat)
		}
	}
	n.bf = make([]float64, classes)
	n.mbf = make([]float64, classes)
	return n
}

func (n *CNN) l1Out() int   { return n.inLen - n.k1 + 1 }
func (n *CNN) p1Out() int   { return n.l1Out() / n.p1 }
func (n *CNN) l2Out() int   { return n.p1Out() - n.k2 + 1 }
func (n *CNN) p2Out() int   { return n.l2Out() / n.p2 }
func (n *CNN) flatLen() int { return n.c2 * n.p2Out() }

// activations holds every intermediate needed by backprop.
type activations struct {
	in     []float64
	conv1  [][]float64 // pre-pool post-relu [c1][l1]
	argp1  [][]int     // pooling argmax indices [c1][p1Out]
	pool1  [][]float64
	conv2  [][]float64
	argp2  [][]int
	pool2  [][]float64
	flat   []float64
	logits []float64
	probs  []float64
}

func (n *CNN) forward(x []float64) *activations {
	a := &activations{in: x}
	// conv1 + relu
	a.conv1 = make([][]float64, n.c1)
	for c := 0; c < n.c1; c++ {
		out := make([]float64, n.l1Out())
		for i := range out {
			s := n.b1[c]
			for k := 0; k < n.k1; k++ {
				s += n.w1[c][k] * x[i+k]
			}
			if s < 0 {
				s = 0
			}
			out[i] = s
		}
		a.conv1[c] = out
	}
	// pool1
	a.pool1 = make([][]float64, n.c1)
	a.argp1 = make([][]int, n.c1)
	for c := 0; c < n.c1; c++ {
		m := n.p1Out()
		a.pool1[c] = make([]float64, m)
		a.argp1[c] = make([]int, m)
		for i := 0; i < m; i++ {
			best, bi := math.Inf(-1), 0
			for k := 0; k < n.p1; k++ {
				idx := i*n.p1 + k
				if v := a.conv1[c][idx]; v > best {
					best, bi = v, idx
				}
			}
			a.pool1[c][i] = best
			a.argp1[c][i] = bi
		}
	}
	// conv2 + relu
	a.conv2 = make([][]float64, n.c2)
	for o := 0; o < n.c2; o++ {
		out := make([]float64, n.l2Out())
		for i := range out {
			s := n.b2[o]
			for c := 0; c < n.c1; c++ {
				for k := 0; k < n.k2; k++ {
					s += n.w2[o][c][k] * a.pool1[c][i+k]
				}
			}
			if s < 0 {
				s = 0
			}
			out[i] = s
		}
		a.conv2[o] = out
	}
	// pool2
	a.pool2 = make([][]float64, n.c2)
	a.argp2 = make([][]int, n.c2)
	for o := 0; o < n.c2; o++ {
		m := n.p2Out()
		a.pool2[o] = make([]float64, m)
		a.argp2[o] = make([]int, m)
		for i := 0; i < m; i++ {
			best, bi := math.Inf(-1), 0
			for k := 0; k < n.p2; k++ {
				idx := i*n.p2 + k
				if v := a.conv2[o][idx]; v > best {
					best, bi = v, idx
				}
			}
			a.pool2[o][i] = best
			a.argp2[o][i] = bi
		}
	}
	// flatten + fc
	a.flat = make([]float64, 0, n.flatLen())
	for o := 0; o < n.c2; o++ {
		a.flat = append(a.flat, a.pool2[o]...)
	}
	a.logits = make([]float64, n.classes)
	for c := 0; c < n.classes; c++ {
		s := n.bf[c]
		for i, v := range a.flat {
			s += n.wf[c][i] * v
		}
		a.logits[c] = s
	}
	a.probs = softmax(a.logits)
	return a
}

func softmax(z []float64) []float64 {
	mx := math.Inf(-1)
	for _, v := range z {
		if v > mx {
			mx = v
		}
	}
	out := make([]float64, len(z))
	var sum float64
	for i, v := range z {
		out[i] = math.Exp(v - mx)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// clip bounds a backpropagated gradient so one noisy sample cannot blow up
// the weights (per-sample SGD has no batch averaging to damp it).
func clip(g float64) float64 {
	const lim = 5.0
	if g > lim {
		return lim
	}
	if g < -lim {
		return -lim
	}
	return g
}

// backward applies one SGD step for sample (x, y).
func (n *CNN) backward(a *activations, y int, lr, mom float64) {
	// dLogits
	dLog := append([]float64(nil), a.probs...)
	dLog[y] -= 1

	// FC grads and dFlat
	dFlat := make([]float64, len(a.flat))
	for c := 0; c < n.classes; c++ {
		g := dLog[c]
		for i, v := range a.flat {
			n.mwf[c][i] = mom*n.mwf[c][i] - lr*g*v
			n.wf[c][i] += n.mwf[c][i]
			dFlat[i] += g * n.wf[c][i]
		}
		n.mbf[c] = mom*n.mbf[c] - lr*g
		n.bf[c] += n.mbf[c]
	}

	// unflatten to dPool2, route through pool2 to dConv2 (relu mask)
	dConv2 := make([][]float64, n.c2)
	p2 := n.p2Out()
	for o := 0; o < n.c2; o++ {
		dConv2[o] = make([]float64, n.l2Out())
		for i := 0; i < p2; i++ {
			g := clip(dFlat[o*p2+i])
			idx := a.argp2[o][i]
			if a.conv2[o][idx] > 0 {
				dConv2[o][idx] += g
			}
		}
	}

	// conv2 grads and dPool1
	dPool1 := make([][]float64, n.c1)
	for c := range dPool1 {
		dPool1[c] = make([]float64, n.p1Out())
	}
	for o := 0; o < n.c2; o++ {
		for i, g := range dConv2[o] {
			if g == 0 {
				continue
			}
			g = clip(g)
			for c := 0; c < n.c1; c++ {
				for k := 0; k < n.k2; k++ {
					dPool1[c][i+k] += g * n.w2[o][c][k]
					n.mw2[o][c][k] = mom*n.mw2[o][c][k] - lr*g*a.pool1[c][i+k]
					n.w2[o][c][k] += n.mw2[o][c][k]
				}
			}
			n.mb2[o] = mom*n.mb2[o] - lr*g
			n.b2[o] += n.mb2[o]
		}
	}

	// route through pool1 to dConv1 (relu mask), conv1 grads
	for c := 0; c < n.c1; c++ {
		for i := 0; i < n.p1Out(); i++ {
			g := clip(dPool1[c][i])
			if g == 0 {
				continue
			}
			idx := a.argp1[c][i]
			if a.conv1[c][idx] <= 0 {
				continue
			}
			for k := 0; k < n.k1; k++ {
				n.mw1[c][k] = mom*n.mw1[c][k] - lr*g*a.in[idx+k]
				n.w1[c][k] += n.mw1[c][k]
			}
			n.mb1[c] = mom*n.mb1[c] - lr*g
			n.b1[c] += n.mb1[c]
		}
	}
}

// TrainCNN fits a CNN on the dataset.
func TrainCNN(train *Dataset, cfg CNNConfig) (*CNN, error) {
	if train.Len() == 0 {
		return nil, errors.New("classifier: empty training set")
	}
	n := NewCNN(len(train.X[0]), train.Classes, cfg)
	n.std = FitStandardizer(train.X)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	lr := cfg.LR
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(train.Len())
		for _, i := range perm {
			x := n.std.Apply(train.X[i])
			a := n.forward(x)
			n.backward(a, train.Y[i], lr, cfg.Momentum)
		}
		lr *= 0.93 // step decay
	}
	return n, nil
}

// Predict returns the most probable class.
func (n *CNN) Predict(x []float64) int {
	if n.std != nil {
		x = n.std.Apply(x)
	}
	a := n.forward(x)
	best, bi := math.Inf(-1), -1
	for i, v := range a.logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
