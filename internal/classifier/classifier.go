// Package classifier provides the trace classifiers for the Figure 13
// snoop: a nearest-centroid baseline and a from-scratch 1-D convolutional
// network trained with SGD. The paper uses a ResNet18 on 257-dimensional
// ULI traces; the classification problem is small enough that a compact CNN
// reaches the same separability, and the substitution is documented in
// DESIGN.md.
package classifier

import (
	"errors"
	"math"
	"math/rand"
)

// Dataset is a labelled set of fixed-length traces.
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends one labelled trace.
func (d *Dataset) Add(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	if y+1 > d.Classes {
		d.Classes = y + 1
	}
}

// Split partitions the dataset into train and test sets with the given
// train fraction, shuffling deterministically by seed and stratifying is
// unnecessary at these sizes.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	nTrain := int(float64(d.Len()) * trainFrac)
	train = &Dataset{Classes: d.Classes}
	test = &Dataset{Classes: d.Classes}
	for i, j := range idx {
		if i < nTrain {
			train.Add(d.X[j], d.Y[j])
		} else {
			test.Add(d.X[j], d.Y[j])
		}
	}
	return train, test
}

// Standardizer performs per-feature z-scoring fitted on training data.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes feature statistics.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	n := len(X[0])
	s := &Standardizer{Mean: make([]float64, n), Std: make([]float64, n)}
	for _, x := range X {
		for j, v := range x {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(X))
	}
	for _, x := range X {
		for j, v := range x {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(len(X)))
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply z-scores one trace.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// Model is anything that predicts a class from a trace.
type Model interface {
	Predict(x []float64) int
}

// Evaluate returns accuracy and the confusion matrix (rows = truth).
func Evaluate(m Model, test *Dataset) (float64, [][]int) {
	conf := make([][]int, test.Classes)
	for i := range conf {
		conf[i] = make([]int, test.Classes)
	}
	correct := 0
	for i, x := range test.X {
		p := m.Predict(x)
		if p >= 0 && p < test.Classes {
			conf[test.Y[i]][p]++
		}
		if p == test.Y[i] {
			correct++
		}
	}
	if test.Len() == 0 {
		return 0, conf
	}
	return float64(correct) / float64(test.Len()), conf
}

// ---------------------------------------------------------------------------
// Nearest centroid
// ---------------------------------------------------------------------------

// NearestCentroid classifies by Euclidean distance to per-class mean traces.
type NearestCentroid struct {
	Centroids [][]float64
	std       *Standardizer
}

// TrainNearestCentroid fits the baseline.
func TrainNearestCentroid(train *Dataset) (*NearestCentroid, error) {
	if train.Len() == 0 {
		return nil, errors.New("classifier: empty training set")
	}
	std := FitStandardizer(train.X)
	dim := len(train.X[0])
	sums := make([][]float64, train.Classes)
	counts := make([]int, train.Classes)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for i, x := range train.X {
		z := std.Apply(x)
		for j, v := range z {
			sums[train.Y[i]][j] += v
		}
		counts[train.Y[i]]++
	}
	for c := range sums {
		if counts[c] == 0 {
			continue
		}
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
	}
	return &NearestCentroid{Centroids: sums, std: std}, nil
}

// Predict returns the nearest class.
func (nc *NearestCentroid) Predict(x []float64) int {
	z := nc.std.Apply(x)
	best, bestD := -1, math.Inf(1)
	for c, cen := range nc.Centroids {
		var d float64
		for j := range z {
			diff := z[j] - cen[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
