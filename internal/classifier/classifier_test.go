package classifier

import (
	"math"
	"math/rand"
	"testing"
)

// synth builds a K-class dataset of noisy prototype traces of length dim:
// class c has a bump at a class-specific position, like the snoop traces.
func synth(classes, perClass, dim int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{}
	for c := 0; c < classes; c++ {
		center := (c*dim)/classes + dim/(2*classes)
		for s := 0; s < perClass; s++ {
			x := make([]float64, dim)
			for j := range x {
				d := float64(j - center)
				x[j] = math.Exp(-d*d/18) + rng.NormFloat64()*noise
			}
			ds.Add(x, c)
		}
	}
	return ds
}

func TestSplit(t *testing.T) {
	ds := synth(3, 20, 32, 0.1, 1)
	train, test := ds.Split(0.75, 7)
	if train.Len()+test.Len() != ds.Len() {
		t.Fatal("split lost samples")
	}
	if train.Len() != 45 {
		t.Fatalf("train size %d", train.Len())
	}
	if train.Classes != 3 || test.Classes != 3 {
		t.Fatal("class count lost in split")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 30}}
	s := FitStandardizer(X)
	z := s.Apply([]float64{2, 20})
	if math.Abs(z[0]) > 1e-12 || math.Abs(z[1]) > 1e-12 {
		t.Fatalf("midpoint should standardise to 0: %v", z)
	}
	// Constant features must not divide by zero.
	s2 := FitStandardizer([][]float64{{5}, {5}})
	if out := s2.Apply([]float64{5}); out[0] != 0 {
		t.Fatalf("constant feature: %v", out)
	}
}

func TestNearestCentroidSeparable(t *testing.T) {
	ds := synth(5, 30, 64, 0.15, 3)
	train, test := ds.Split(0.7, 3)
	nc, err := TrainNearestCentroid(train)
	if err != nil {
		t.Fatal(err)
	}
	acc, conf := Evaluate(nc, test)
	if acc < 0.95 {
		t.Fatalf("nearest centroid accuracy %.2f on separable data", acc)
	}
	// Confusion matrix totals must equal test size.
	total := 0
	for _, row := range conf {
		for _, v := range row {
			total += v
		}
	}
	if total != test.Len() {
		t.Fatalf("confusion total %d vs %d", total, test.Len())
	}
}

func TestTrainNearestCentroidEmpty(t *testing.T) {
	if _, err := TrainNearestCentroid(&Dataset{}); err == nil {
		t.Fatal("empty training should error")
	}
}

func TestCNNLearnsSeparableClasses(t *testing.T) {
	ds := synth(6, 40, 96, 0.25, 5)
	train, test := ds.Split(0.75, 5)
	cfg := DefaultCNNConfig()
	cfg.Epochs = 12
	cnn, err := TrainCNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := Evaluate(cnn, test)
	if acc < 0.9 {
		t.Fatalf("CNN accuracy %.2f on separable data, want >= 0.9", acc)
	}
}

func TestCNNBeatsChanceOnHardData(t *testing.T) {
	ds := synth(8, 30, 64, 0.9, 11)
	train, test := ds.Split(0.75, 11)
	cfg := DefaultCNNConfig()
	cfg.Epochs = 10
	cnn, err := TrainCNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := Evaluate(cnn, test)
	if acc < 2.0/8 {
		t.Fatalf("CNN accuracy %.2f barely above chance", acc)
	}
}

func TestCNNDeterministic(t *testing.T) {
	ds := synth(3, 15, 48, 0.2, 2)
	train, _ := ds.Split(0.8, 2)
	cfg := DefaultCNNConfig()
	cfg.Epochs = 3
	a, _ := TrainCNN(train, cfg)
	b, _ := TrainCNN(train, cfg)
	for i := range ds.X {
		if a.Predict(ds.X[i]) != b.Predict(ds.X[i]) {
			t.Fatal("same-seed training diverged")
		}
	}
}

func TestTrainCNNEmpty(t *testing.T) {
	if _, err := TrainCNN(&Dataset{}, DefaultCNNConfig()); err == nil {
		t.Fatal("empty training should error")
	}
}

func TestSoftmaxStable(t *testing.T) {
	p := softmax([]float64{1000, 1000, 999})
	sum := 0.0
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum %v", sum)
	}
}
