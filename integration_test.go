// Cross-module integration tests: each exercises a full attack path through
// the public API plus the application substrates, the way the paper's
// end-to-end scenarios do.
package ragnar_test

import (
	"testing"

	"github.com/thu-has/ragnar"
	"github.com/thu-has/ragnar/internal/appdisagg"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sidechan"
	"github.com/thu-has/ragnar/internal/stats"
	"github.com/thu-has/ragnar/internal/verbs"
)

// The Section VI-B scenario end to end: a victim's B+ tree lookups
// concentrate on one leaf; the attacker, knowing only the shared MR, recovers
// which region the victim hits via the offset effect.
func TestSnoopRecoversBTreeLeafBank(t *testing.T) {
	// Build the index and find the hot key's leaf offset (the secret).
	cfg := lab.DefaultConfig(nic.CX4)
	cfg.Clients = 2
	c := lab.New(cfg)
	ms, err := appdisagg.NewMemoryServer(c, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := appdisagg.NewClient(c, ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	var v [appdisagg.ValueBytes]byte
	for k := uint64(0); k < 64; k++ {
		if err := cl.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	const hotKey = 23
	leafOff, err := cl.LeafOffsetOf(hotKey)
	if err != nil {
		t.Fatal(err)
	}

	// Re-create the scenario in the snoop rig: the victim generator reads
	// the leaf's first entries (as tree lookups do), the attacker probes.
	snoopCfg := sidechan.DefaultSnoopConfig(nic.CX4)
	snoopCfg.Background = false
	snoopCfg.ProbesPerOffset = 8
	snoopCfg.Observation = nil
	// Observation window around the candidate node region, node-aligned to
	// the tree's 1 KiB blocks; probe at 16 B granularity.
	base := leafOff - leafOff%1024
	for off := base; off <= base+1024; off += 16 {
		snoopCfg.Observation = append(snoopCfg.Observation, off)
	}
	s, err := sidechan.NewSnooper(snoopCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate (victim idle), then capture live and subtract the
	// attacker's own offset-dependent costs.
	baseline, err := s.CaptureBaseline()
	if err != nil {
		t.Fatal(err)
	}
	live, err := s.CaptureTrace(leafOff)
	if err != nil {
		t.Fatal(err)
	}
	trace := sidechan.Subtract(live, baseline)
	// The victim's bank must stand out against the rest.
	banks := uint64(nic.CX4.TPUBanks)
	var same, other []float64
	for i, off := range snoopCfg.Observation {
		if (off/64)%banks == (leafOff/64)%banks {
			same = append(same, trace[i])
		} else {
			other = append(other, trace[i])
		}
	}
	if stats.Mean(same) <= stats.Mean(other) {
		t.Fatalf("tree leaf at offset %d not visible: same-bank %.2f vs other %.2f",
			leafOff, stats.Mean(same), stats.Mean(other))
	}
}

// Conservation invariant at the DES level: every posted work request
// completes exactly once, regardless of the op mix.
func TestEveryWQECompletesOnce(t *testing.T) {
	cluster := ragnar.NewCluster(ragnar.DefaultClusterConfig(ragnar.CX5))
	mr, err := cluster.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cluster.Dial(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	conn.CQ.Notify = func(c nic.Completion) { seen[c.WRID]++ }

	posted := 0
	rng := cluster.Eng.Rand()
	for i := 0; i < 200; i++ {
		wrid := uint64(i)
		var err error
		switch rng.Intn(4) {
		case 0:
			err = conn.QP.PostRead(wrid, nil, mr.Describe(uint64(rng.Intn(1024))*64), 64)
		case 1:
			err = conn.QP.PostWrite(wrid, make([]byte, 128), mr.Describe(uint64(rng.Intn(1024))*64), 128)
		case 2:
			err = conn.QP.PostAtomicFAA(wrid, mr.Describe(uint64(rng.Intn(64))*8), 1)
		case 3:
			// Deliberately out of bounds: must still complete (with error).
			err = conn.QP.PostRead(wrid, nil, mr.Describe(mr.Size()), 64)
		}
		if err == verbs.ErrSQFull {
			cluster.Eng.Run() // drain and retry once
			i--
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		posted++
	}
	cluster.Eng.Run()
	if len(seen) != posted {
		t.Fatalf("posted %d WQEs, %d distinct completions", posted, len(seen))
	}
	for wrid, n := range seen {
		if n != 1 {
			t.Fatalf("WQE %d completed %d times", wrid, n)
		}
	}
	if conn.QP.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", conn.QP.Outstanding())
	}
}

// The covert channel works through the public API against a cluster that
// also hosts a live application — attacks and workloads coexist.
func TestChannelSurvivesApplicationTraffic(t *testing.T) {
	ch, err := ragnar.NewInterMRChannel(ragnar.CX5, 31)
	if err != nil {
		t.Fatal(err)
	}
	// A tree workload shares the cluster: same server, same engine.
	ms, err := appdisagg.NewMemoryServer(ch.Cluster, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := appdisagg.NewClient(ch.Cluster, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	var v [appdisagg.ValueBytes]byte
	for k := uint64(0); k < 30; k++ {
		if err := cl.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Now transmit: the channel must still decode (the tree is quiescent
	// during transmission; its MR registration and cache footprint remain).
	run, err := ch.Transmit(ragnar.RandomBits(77, 48))
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.ErrorRate > 0.2 {
		t.Fatalf("channel error %.1f%% alongside application state", run.Result.ErrorRate*100)
	}
}
