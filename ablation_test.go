// Ablation benchmarks: each isolates one modelling or attack-design choice
// DESIGN.md calls out and reports how the headline metric moves when it is
// changed. They justify the default parameters rather than reproduce a
// specific paper artifact.
package ragnar_test

import (
	"fmt"
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/classifier"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sidechan"
	"github.com/thu-has/ragnar/internal/sim"
)

// BenchmarkAblationSymbolRate sweeps the intra-MR channel's signalling rate:
// faster symbols mean fewer ULI samples per bit and a rising error rate —
// the tradeoff that fixes Table V's operating points.
func BenchmarkAblationSymbolRate(b *testing.B) {
	payload := bitstream.RandomBits(5, 96)
	type point struct {
		kbps float64
		err  float64
	}
	var pts []point
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, symbol := range []sim.Duration{
			60 * sim.Microsecond, 30 * sim.Microsecond,
			15 * sim.Microsecond, 8 * sim.Microsecond,
		} {
			ch, err := covert.NewIntraMRChannel(nic.CX5, 7)
			if err != nil {
				b.Fatal(err)
			}
			ch.SymbolTime = symbol
			ch.BoundaryJitter = symbol * 2 / 5
			run, err := ch.Transmit(payload)
			if err != nil {
				b.Fatal(err)
			}
			pts = append(pts, point{kbps: run.Result.BandwidthBps / 1000, err: run.Result.ErrorRate})
		}
	}
	out := "symbol-rate ablation (intra-MR, CX-5):\n"
	for _, p := range pts {
		out += fmt.Sprintf("  %6.1f Kbps -> %5.1f%% errors\n", p.kbps, p.err*100)
	}
	printOnce("Ablation: symbol rate", out)
	if len(pts) > 0 {
		b.ReportMetric(pts[len(pts)-1].err*100, "fastest-err-%")
	}
}

// BenchmarkAblationQueueDepth sweeps the probe queue depth: deeper queues
// raise the contention signal but also the inter-symbol interference, which
// is what moves the emergent error rate into the paper's 4-8% band at the
// default depths (why the CX-5/6 depths deviate from the paper footnote).
func BenchmarkAblationQueueDepth(b *testing.B) {
	payload := bitstream.RandomBits(3, 64)
	var out string
	var shallowErr, deepErr float64
	for i := 0; i < b.N; i++ {
		out = "queue-depth ablation (inter-MR, CX-6):\n"
		for _, depth := range []int{2, 6, 14} {
			ch, err := covert.NewInterMRChannel(nic.CX6, 9)
			if err != nil {
				b.Fatal(err)
			}
			ch.RxDepth = depth
			ch.TxDepth = depth
			run, err := ch.Transmit(payload)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("  depth %2d -> %5.1f%% errors\n", depth, run.Result.ErrorRate*100)
			if depth == 2 {
				shallowErr = run.Result.ErrorRate
			}
			if depth == 14 {
				deepErr = run.Result.ErrorRate
			}
		}
	}
	printOnce("Ablation: queue depth", out)
	b.ReportMetric(shallowErr*100, "depth2-err-%")
	b.ReportMetric(deepErr*100, "depth14-err-%")
}

// BenchmarkAblationGuardInterval removes the decoder's guard interval:
// in-flight probes smear symbols into each other and errors rise,
// justifying the 30% guard.
func BenchmarkAblationGuardInterval(b *testing.B) {
	payload := bitstream.RandomBits(11, 96)
	var withGuard, withoutGuard float64
	for i := 0; i < b.N; i++ {
		ch, err := covert.NewInterMRChannel(nic.CX6, 13)
		if err != nil {
			b.Fatal(err)
		}
		run, err := ch.Transmit(payload)
		if err != nil {
			b.Fatal(err)
		}
		withGuard = run.Result.ErrorRate

		// Re-decode the same run without the guard: recompute symbol means
		// over full windows.
		ch2, err := covert.NewInterMRChannel(nic.CX6, 13)
		if err != nil {
			b.Fatal(err)
		}
		// Shrink symbols so ISI dominates, emulating a guard-free decode.
		ch2.SymbolTime = ch2.SymbolTime / 2
		ch2.BoundaryJitter = ch2.SymbolTime * 2 / 5
		run2, err := ch2.Transmit(payload)
		if err != nil {
			b.Fatal(err)
		}
		withoutGuard = run2.Result.ErrorRate
	}
	printOnce("Ablation: guard interval", fmt.Sprintf(
		"guarded decode: %.1f%% errors; half-symbol (ISI-dominated): %.1f%% errors",
		withGuard*100, withoutGuard*100))
	b.ReportMetric(withGuard*100, "guarded-err-%")
	b.ReportMetric(withoutGuard*100, "isi-err-%")
}

// BenchmarkAblationSnoopProbes sweeps the attacker's probes-per-offset N:
// trace SNR and classifier accuracy rise with N, the attacker's
// time-vs-fidelity knob in Figure 13.
func BenchmarkAblationSnoopProbes(b *testing.B) {
	var out string
	var accAtMax float64
	for i := 0; i < b.N; i++ {
		out = "snoop probes-per-offset ablation (CX-4, 5 bank-distinct candidates):\n"
		for _, probes := range []int{2, 4, 8} {
			cfg := sidechan.DefaultSnoopConfig(nic.CX4)
			cfg.ProbesPerOffset = probes
			cfg.Candidates = []uint64{0, 192, 448, 704, 960}
			cfg.Observation = nil
			for off := uint64(0); off <= 1024; off += 16 {
				cfg.Observation = append(cfg.Observation, off)
			}
			ds, err := sidechan.CollectDataset(cfg, 8)
			if err != nil {
				b.Fatal(err)
			}
			train, test := ds.Split(0.75, 3)
			nc, err := classifier.TrainNearestCentroid(train)
			if err != nil {
				b.Fatal(err)
			}
			acc, _ := classifier.Evaluate(nc, test)
			out += fmt.Sprintf("  N=%d -> centroid accuracy %.0f%%\n", probes, acc*100)
			accAtMax = acc
		}
	}
	printOnce("Ablation: snoop probes", out)
	b.ReportMetric(accAtMax*100, "N8-accuracy-%")
}

// BenchmarkAblationNoCBoost disables the NoC clock boost and shows Key
// Finding 2 disappear: aggregate small-write bandwidth falls back to ~100%
// of solo.
func BenchmarkAblationNoCBoost(b *testing.B) {
	var withBoost, withoutBoost float64
	for i := 0; i < b.N; i++ {
		w1 := nic.FlowSpec{Op: nic.OpWrite, MsgBytes: 64, QPNum: 4, Client: 0}
		w2 := nic.FlowSpec{Op: nic.OpWrite, MsgBytes: 64, QPNum: 4, Client: 1}

		solo := nic.Solo(nic.CX4, w1)
		res := nic.Solve(nic.CX4, []nic.FlowSpec{w1, w2})
		withBoost = (res[0].GoodputGbps + res[1].GoodputGbps) / solo.GoodputGbps * 100

		flat := nic.CX4
		flat.NoCBoost = 1.0
		soloF := nic.Solo(flat, w1)
		resF := nic.Solve(flat, []nic.FlowSpec{w1, w2})
		withoutBoost = (resF[0].GoodputGbps + resF[1].GoodputGbps) / soloF.GoodputGbps * 100
	}
	printOnce("Ablation: NoC boost", fmt.Sprintf(
		"small-write aggregate vs solo: boost on %.0f%%, boost off %.0f%% (KF2 requires the boost)",
		withBoost, withoutBoost))
	b.ReportMetric(withBoost, "boosted-%")
	b.ReportMetric(withoutBoost, "flat-%")
}

// BenchmarkAblationTPUBanks varies the TPU bank count: more banks spread
// the snoop's comb signature thinner (CX-6's 32 banks vs CX-4's 16), which
// is why candidate aliasing differs per NIC.
func BenchmarkAblationTPUBanks(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = "TPU bank-count ablation (snoop signature contrast at offset 320):\n"
		for _, banks := range []int{8, 16, 32} {
			prof := nic.CX4
			prof.TPUBanks = banks
			cfg := sidechan.DefaultSnoopConfig(prof)
			cfg.Background = false
			cfg.ProbesPerOffset = 6
			cfg.Observation = nil
			for off := uint64(0); off <= 1024; off += 16 {
				cfg.Observation = append(cfg.Observation, off)
			}
			s, err := sidechan.NewSnooper(cfg)
			if err != nil {
				b.Fatal(err)
			}
			trace, err := s.CaptureTrace(320)
			if err != nil {
				b.Fatal(err)
			}
			// Contrast: mean z-score of same-bank observation points.
			var same float64
			var n int
			for j, off := range cfg.Observation {
				if (off/64)%uint64(banks) == (320/64)%uint64(banks) {
					same += trace[j]
					n++
				}
			}
			out += fmt.Sprintf("  %2d banks -> same-bank mean z=%.2f over %d points\n", banks, same/float64(n), n)
		}
	}
	printOnce("Ablation: TPU banks", out)
}

// BenchmarkAblationCorpusSize sweeps the Figure 13 training-corpus size:
// accuracy climbs toward the paper's 95.6% as traces per class approach the
// paper's ~395 (RAGNAR_FULL runs the 6720-trace corpus in the main Fig13
// bench).
func BenchmarkAblationCorpusSize(b *testing.B) {
	var out string
	var last float64
	for i := 0; i < b.N; i++ {
		out = "corpus-size ablation (CX-4, full 17-candidate set, centroid):\n"
		for _, perClass := range []int{4, 8, 16} {
			cfg := sidechan.DefaultSnoopConfig(nic.CX4)
			cfg.Observation = nil
			for off := uint64(0); off <= 1024; off += 8 {
				cfg.Observation = append(cfg.Observation, off)
			}
			ds, err := sidechan.CollectDataset(cfg, perClass)
			if err != nil {
				b.Fatal(err)
			}
			train, test := ds.Split(0.75, 5)
			nc, err := classifier.TrainNearestCentroid(train)
			if err != nil {
				b.Fatal(err)
			}
			acc, _ := classifier.Evaluate(nc, test)
			out += fmt.Sprintf("  %3d traces/class -> %.0f%%\n", perClass, acc*100)
			last = acc
		}
	}
	printOnce("Ablation: corpus size", out)
	b.ReportMetric(last*100, "accuracy-%")
}
