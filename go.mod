module github.com/thu-has/ragnar

go 1.22
