// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact, reports the headline
// quantities as custom metrics, and prints the full rows/series once so
// `go test -bench=. -benchmem | tee bench_output.txt` doubles as the
// reproduction log. Set RAGNAR_FULL=1 for paper-scale parameter spaces.
package ragnar_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/experiments"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/pythia"
	"github.com/thu-has/ragnar/internal/uli"
)

func full() bool { return os.Getenv("RAGNAR_FULL") != "" }

// printOnce emits an experiment's rendered output exactly once per process.
var printed sync.Map

func printOnce(key, out string) {
	if _, dup := printed.LoadOrStore(key, true); !dup {
		fmt.Printf("\n----- %s -----\n%s\n", key, out)
	}
}

// BenchmarkTable1Taxonomy regenerates Table I (static taxonomy).
func BenchmarkTable1Taxonomy(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderTable1(experiments.Table1())
	}
	printOnce("Table I", out)
}

// BenchmarkTable3Adapters regenerates Table III (adapter parameters).
func BenchmarkTable3Adapters(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderTable3()
	}
	printOnce("Table III", out)
}

// BenchmarkFig4PrioritySweep runs the Grain-I/II contention sweep at paper
// scale: all >6000 parameter combinations (the fluid solver makes the full
// space cheap).
func BenchmarkFig4PrioritySweep(b *testing.B) {
	var r experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(nic.CX4, true, 0)
	}
	b.ReportMetric(float64(r.Combos), "combos")
	printOnce("Figure 4 (CX-4)", r.Render())
	printOnce("Figure 4 (CX-5)", experiments.Fig4(nic.CX5, true, 0).Render())
	printOnce("Figure 4 (CX-6)", experiments.Fig4(nic.CX6, true, 0).Render())
}

// BenchmarkFig5InterMRULI measures ULI for same vs different remote MRs
// across message sizes (Figure 5).
func BenchmarkFig5InterMRULI(b *testing.B) {
	probes := 200
	if full() {
		probes = 600
	}
	var r experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig5(nic.CX4, probes, int64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: the different-MR penalty at 512 B.
	for _, pt := range r.Points {
		if pt.MsgSize == 512 {
			b.ReportMetric(pt.DiffMR.Mean-pt.SameMR.Mean, "diffMR-delta-ns")
		}
	}
	printOnce("Figure 5", r.Render())
}

// BenchmarkFig6AbsOffset64B sweeps absolute offsets with 64 B reads.
func BenchmarkFig6AbsOffset64B(b *testing.B) {
	benchOffsets(b, "Figure 6", experiments.Fig6)
}

// BenchmarkFig7AbsOffset1KB sweeps absolute offsets with 1024 B reads.
func BenchmarkFig7AbsOffset1KB(b *testing.B) {
	benchOffsets(b, "Figure 7", experiments.Fig7)
}

// BenchmarkFig8RelOffset sweeps relative offsets (bank conflicts).
func BenchmarkFig8RelOffset(b *testing.B) {
	benchOffsets(b, "Figure 8", experiments.Fig8)
}

func benchOffsets(b *testing.B, name string, run func(nic.Profile, int, int64, int) (experiments.OffsetResult, error)) {
	b.Helper()
	probes := 200
	if full() {
		probes = 600
	}
	var r experiments.OffsetResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = run(nic.CX4, probes, int64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Points)), "offsets")
	printOnce(name, r.Render())
}

// BenchmarkFig9PriorityChannel transmits the paper's bitstream over the
// priority channel on all NICs.
func BenchmarkFig9PriorityChannel(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(int64(i)+1, 0)
	}
	worst := 0.0
	for _, run := range r.Runs {
		if run.Result.ErrorRate > worst {
			worst = run.Result.ErrorRate
		}
	}
	b.ReportMetric(worst*100, "error-%")
	printOnce("Figure 9", r.Render())
}

// BenchmarkFig10FoldedULI reproduces the deep-queue folded-ULI pattern.
func BenchmarkFig10FoldedULI(b *testing.B) {
	var r experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig10(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("Figure 10", r.Render())
}

// BenchmarkFig11InterMR folds the inter-MR channel period on all NICs.
func BenchmarkFig11InterMR(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig11(int64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("Figure 11", r.Render())
}

// BenchmarkTable5CovertChannels evaluates all three covert channels on all
// three adapters.
func BenchmarkTable5CovertChannels(b *testing.B) {
	bits := 128
	if full() {
		bits = 1024
	}
	var r experiments.Table5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table5(bits, int64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Channel == "inter-MR(III)" && row.NIC == "ConnectX-6" {
			b.ReportMetric(row.BandwidthBps/1000, "CX6-interMR-Kbps")
			b.ReportMetric(row.ErrorRate*100, "CX6-interMR-err-%")
		}
	}
	printOnce("Table V", r.Render())
}

// BenchmarkLossGrid sweeps per-link wire loss against the ULI covert
// channels on CX-5 and reports how much effective bandwidth 1% loss leaves.
func BenchmarkLossGrid(b *testing.B) {
	bits, reps := 96, 2
	if full() {
		bits, reps = 512, 5
	}
	var r experiments.LossGridResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.LossGrid(nic.CX5, bits, reps, nil, int64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range r.Cells {
		if c.Channel == "inter-MR(III)" && c.LossPct == 1 {
			b.ReportMetric(c.EffectiveBps, "interMR-1pct-eff-bps")
			b.ReportMetric(c.ErrorRate*100, "interMR-1pct-err-%")
		}
	}
	printOnce("Loss grid", r.Render())
}

// BenchmarkPythiaBaseline runs the persistent-channel baseline and reports
// the Ragnar/Pythia bandwidth factor (paper: 3.2x).
func BenchmarkPythiaBaseline(b *testing.B) {
	var r experiments.PythiaResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.PythiaCompare(64, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SpeedupX, "ragnar/pythia-x")
	printOnce("Pythia comparison", r.Render())
}

// BenchmarkFig12Fingerprint runs the shuffle/join fingerprint attack.
func BenchmarkFig12Fingerprint(b *testing.B) {
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12(nic.CX5, int64(i)+1)
	}
	ok := 0.0
	if r.ShuffleSeen.String() == "shuffle" && r.JoinSeen.String() == "join" && r.IdleSeen.String() == "null" {
		ok = 1
	}
	b.ReportMetric(ok, "all-detected")
	printOnce("Figure 12", r.Render())
}

// BenchmarkFig13Snoop runs the full snoop pipeline: dataset collection over
// the 17-candidate / 257-observation space, CNN training, evaluation.
// RAGNAR_FULL uses the paper's ~6720-trace corpus.
func BenchmarkFig13Snoop(b *testing.B) {
	perClass := 12
	if full() {
		perClass = 395
	}
	var r experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig13(nic.CX4, perClass, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Report.CNNAcc*100, "cnn-accuracy-%")
	b.ReportMetric(r.Report.CentroidAcc*100, "centroid-accuracy-%")
	printOnce("Figure 13", r.Render())
}

// BenchmarkDefenseEvasion evaluates the HARMONIC-style detector and the
// noise mitigation (Section VII).
func BenchmarkDefenseEvasion(b *testing.B) {
	var r experiments.DefenseResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.DefenseEval(nic.CX5, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	intra := r.FlaggedWindows["intra-MR(IV)"]
	b.ReportMetric(float64(intra[0]), "grainIV-flagged-windows")
	printOnce("Defense", r.Render())
}

// BenchmarkULILinearity verifies the methodology's core assumption at
// benchmark scale (Pearson ~ 0.9998 in the paper).
func BenchmarkULILinearity(b *testing.B) {
	var pearson float64
	for i := 0; i < b.N; i++ {
		c := lab.New(lab.DefaultConfig(nic.CX4))
		mr, err := c.RegisterServerMR(2 << 20)
		if err != nil {
			b.Fatal(err)
		}
		mk := func(depth int) *uli.Prober {
			conn, err := c.Dial(0, depth+2)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Warm(conn, mr); err != nil {
				b.Fatal(err)
			}
			return &uli.Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 1024, Depth: depth}
		}
		rep, err := uli.VerifyLinearity(c.Eng, mk, []int{4, 8, 16, 32, 64, 128, 256}, 120)
		if err != nil {
			b.Fatal(err)
		}
		pearson = rep.Pearson
	}
	b.ReportMetric(pearson, "pearson")
	printOnce("ULI linearity", fmt.Sprintf("Pearson = %.5f (paper: 0.9998)", pearson))
}

// BenchmarkInterMRThroughput measures raw channel machinery cost: bits
// transmitted per wall-clock second of simulation.
func BenchmarkInterMRThroughput(b *testing.B) {
	payload := bitstream.RandomBits(7, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := covert.NewInterMRChannel(nic.CX5, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Transmit(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "bits/op")
}

// BenchmarkPythiaTransmit measures the baseline's machinery cost.
func BenchmarkPythiaTransmit(b *testing.B) {
	payload := bitstream.RandomBits(7, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := pythia.New(nic.CX5, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Transmit(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Robustness sweeps shuffle sizes and join round counts
// against a fixed detector (the paper's "different round times and
// configurations" observation).
func BenchmarkFig12Robustness(b *testing.B) {
	var r experiments.Fig12RobustnessResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12Robustness(nic.CX5, int64(i)+1)
	}
	b.ReportMetric(float64(r.Correct)/float64(r.Total)*100, "detect-%")
	printOnce("Figure 12 robustness", r.Render())
}
