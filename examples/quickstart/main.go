// Quickstart: build the paper's topology, measure Unit Latency Increase,
// and watch the Grain-IV offset effect appear — the observable every Ragnar
// attack is built on.
package main

import (
	"fmt"
	"log"

	"github.com/thu-has/ragnar"
)

func main() {
	// One server (H3-class) shared by two clients, ConnectX-5 everywhere.
	cluster := ragnar.NewCluster(ragnar.DefaultClusterConfig(ragnar.CX5))

	// The server exports a 2 MiB huge-page memory region, like a KV store.
	mr, err := cluster.RegisterServerMR(2 << 20)
	if err != nil {
		log.Fatal(err)
	}

	// Client 0 connects with a send queue of 10 and warms the NIC caches.
	conn, err := cluster.Dial(0, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Warm(conn, mr); err != nil {
		log.Fatal(err)
	}

	// Measure ULI while probing a few remote address offsets. Aligned
	// offsets translate faster in the NIC's Translation & Protection Unit —
	// the paper's Key Finding 4.
	fmt.Println("ULI vs remote address offset (ConnectX-5, 64B reads, queue depth 8):")
	for _, offset := range []uint64{0, 3, 8, 64, 65, 2048, 2051} {
		prober := &ragnar.Prober{
			QP: conn.QP, CQ: conn.CQ,
			Remote:  mr.Describe(0),
			MsgSize: 64,
			Depth:   8,
			NextOffset: func(i int) uint64 {
				if i%2 == 0 {
					return 0 // alternate with a fixed reference offset
				}
				return offset
			},
		}
		samples, err := prober.Measure(cluster.Eng, 400)
		if err != nil {
			log.Fatal(err)
		}
		// Keep only the probes that touched the variable offset.
		var at []ragnar.ULISample
		for _, s := range samples {
			if s.Offset == offset {
				at = append(at, s)
			}
		}
		tr := ragnar.SummarizeULI(at)
		note := ""
		switch {
		case offset%64 == 0:
			note = "(64B-aligned: fast)"
		case offset%8 == 0:
			note = "(8B-aligned)"
		default:
			note = "(unaligned: slow)"
		}
		fmt.Printf("  offset %5d: %7.1f ns mean [%7.1f, %7.1f] %s\n",
			offset, tr.Mean, tr.P10, tr.P90, note)
	}

	fmt.Println()
	fmt.Println("This latency modulation is invisible to Grain-I..III counters —")
	fmt.Println("it is the covert carrier behind the intra-MR channel and the")
	fmt.Println("disaggregated-memory snoop. Run the other examples to see both.")
}
