// Defense demo (Section VII): why counter-based isolation cannot see the
// Grain-IV channel, and what jamming it with noise actually costs.
//
// The defender is a HARMONIC-style monitor on the server NIC: it learns the
// per-window distribution of every Grain-I..III counter from benign traffic,
// then flags windows that deviate. We run the inter-MR channel (whose sender
// flips between memory regions — a Grain-III signal) and the intra-MR
// channel (whose sender only varies its address offset — Grain-IV) against
// it, then sweep the noise mitigation.
package main

import (
	"fmt"
	"log"

	"github.com/thu-has/ragnar"
)

// monitorChannel transmits bits over a channel while snapshotting the
// server's counters into windows, returning the per-window deltas.
func monitorChannel(ch *ragnar.ULIChannel, bits ragnar.Bits, windows int) ([]ragnar.Snapshot, error) {
	eng := ch.Cluster.Eng
	sampler := ragnar.NewSampler(eng, ch.Cluster.Server.NIC(),
		ch.SymbolTime*ragnar.Duration(len(bits))/ragnar.Duration(windows), windows)
	if _, err := ch.Transmit(bits); err != nil {
		return nil, err
	}
	return sampler.Deltas(), nil
}

func evaluate(name string, mk func() (*ragnar.ULIChannel, error)) error {
	// Train on the channel idling at a constant state (the tenant's benign
	// look), then score a live transmission.
	benignCh, err := mk()
	if err != nil {
		return err
	}
	benign, err := monitorChannel(benignCh, make(ragnar.Bits, 24), 24)
	if err != nil {
		return err
	}
	detector := ragnar.TrainHarmonic(benign)

	liveCh, err := mk()
	if err != nil {
		return err
	}
	live, err := monitorChannel(liveCh, ragnar.RandomBits(3, 24), 24)
	if err != nil {
		return err
	}
	flagged := 0
	for _, d := range live {
		if detector.Detect(d) {
			flagged++
		}
	}
	verdict := "EVADES the counters"
	if flagged > 1 {
		verdict = "detected"
	}
	fmt.Printf("%-16s flagged in %2d/%2d windows -> %s\n", name, flagged, len(live), verdict)
	return nil
}

func main() {
	fmt.Println("HARMONIC-style counter monitor vs. the covert channels (CX-5):")
	if err := evaluate("inter-MR (III)", func() (*ragnar.ULIChannel, error) {
		return ragnar.NewInterMRChannel(ragnar.CX5, 1)
	}); err != nil {
		log.Fatal(err)
	}
	if err := evaluate("intra-MR (IV)", func() (*ragnar.ULIChannel, error) {
		return ragnar.NewIntraMRChannel(ragnar.CX5, 1)
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Noise mitigation vs. the intra-MR channel:")
	fmt.Printf("%-12s %12s %16s\n", "amplitude", "chan error", "mean ULI (cost)")
	payload := ragnar.RandomBits(9, 48)
	for _, amp := range []ragnar.Duration{0, 100 * ragnar.Nanosecond, 300 * ragnar.Nanosecond, 800 * ragnar.Nanosecond} {
		ch, err := ragnar.NewIntraMRChannel(ragnar.CX5, 17)
		if err != nil {
			log.Fatal(err)
		}
		uninstall := ragnar.NoiseMitigation(ch.Cluster.Server.NIC(), amp, ch.Cluster.Eng.Rand())
		run, err := ch.Transmit(payload)
		uninstall()
		if err != nil {
			log.Fatal(err)
		}
		var meanULI float64
		for _, m := range run.SymbolMeans {
			meanULI += m
		}
		meanULI /= float64(len(run.SymbolMeans))
		fmt.Printf("%-12v %11.1f%% %13.0f ns\n", amp, run.Result.ErrorRate*100, meanULI)
	}
	fmt.Println()
	fmt.Println("The offset channel is invisible to every Grain-I..III counter; only")
	fmt.Println("service-time noise jams it, and that noise taxes every benign request.")
}
