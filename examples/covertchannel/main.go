// Covert channel demo: exfiltrate an ASCII message between two clients that
// can only read from the same RDMA server — no shared memory, no direct
// connection. The sender encodes bits purely in *which address offset* it
// reads (the Grain-IV intra-MR channel), so traffic counters show nothing
// unusual.
package main

import (
	"fmt"
	"log"

	"github.com/thu-has/ragnar"
)

func main() {
	const secret = "RAGNAR: volatile channels are real"

	for _, profile := range ragnar.Profiles {
		ch, err := ragnar.NewIntraMRChannel(profile, 42)
		if err != nil {
			log.Fatal(err)
		}
		payload := bitsOf(secret)
		run, err := ch.Transmit(payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", profile.Name)
		fmt.Printf("channel:    %s (bits encoded purely in the sender's address offsets)\n",
			run.Result.Channel)
		fmt.Printf("bandwidth:  %.1f Kbps raw, %.1f Kbps effective, %.2f%% bit errors\n",
			run.Result.BandwidthBps/1000, run.Result.EffectiveBps/1000, run.Result.ErrorRate*100)
		fmt.Printf("sent:       %q\n", secret)
		fmt.Printf("received:   %q\n\n", string(run.Decoded.ToBytes()))
	}

	// The priority channel trades all that bandwidth for robustness: writes
	// of different sizes shift a monitor flow's bandwidth, 1 bit/second,
	// error-free.
	fmt.Println("=== priority channel (Grain I+II, Figure 9) ===")
	pch := ragnar.NewPriorityChannel(ragnar.CX5)
	bits, err := ragnar.ParseBits("1101111101010010")
	if err != nil {
		log.Fatal(err)
	}
	prun := pch.Transmit(bits, 7)
	fmt.Printf("sent %s, received %s (%.0f%% errors at %.1f bps)\n",
		bits, prun.Decoded, prun.Result.ErrorRate*100, prun.Result.BandwidthBps)
}

func bitsOf(s string) ragnar.Bits {
	var out ragnar.Bits
	for _, b := range []byte(s) {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}
