// Database fingerprinting demo (Section VI-A): a distributed database
// shuffles and joins tables over RDMA while an attacker — just another
// client of the same server — watches nothing but its own flow's bandwidth
// and still identifies which operation ran.
package main

import (
	"fmt"
	"log"

	"github.com/thu-has/ragnar"
)

func main() {
	// --- Part 1: the database actually works -----------------------------
	// Three workers shuffle and join real rows through the storage server.
	cfg := ragnar.DefaultClusterConfig(ragnar.CX5)
	cfg.Clients = 3
	cluster := ragnar.NewCluster(cfg)
	db, err := ragnar.NewDB(cluster, 4<<20)
	if err != nil {
		log.Fatal(err)
	}

	orders := make([]ragnar.Row, 600)
	for i := range orders {
		orders[i].Key = uint64(i)
	}
	customers := make([]ragnar.Row, 300)
	for i := range customers {
		customers[i].Key = uint64(i * 2) // every even order has a customer
	}
	db.LoadTable("orders", orders)
	db.LoadTable("customers", customers)

	if err := db.Shuffle("orders"); err != nil {
		log.Fatal(err)
	}
	if err := db.Shuffle("customers"); err != nil {
		log.Fatal(err)
	}
	matches, err := db.HashJoin("orders", "customers")
	if err != nil {
		log.Fatal(err)
	}
	smjMatches, err := db.SortMergeJoin("orders", "customers")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: shuffled 900 rows; hash join found %d matches, sort-merge join %d (want 300)\n\n",
		matches, smjMatches)

	// --- Part 2: the attacker fingerprints those operations --------------
	// Algorithm 1: monitor own bandwidth, correlate against templates.
	mon := ragnar.DefaultMonitorConfig(ragnar.CX5)
	det := ragnar.NewDetector(mon)

	shufPhases := ragnar.ShufflePhases(ragnar.CX5, 3, 2000, 150*ragnar.Millisecond)
	total := shufPhases[0].Start + shufPhases[0].Dur + 150*ragnar.Millisecond
	res := ragnar.Fingerprint(mon, det, shufPhases, total)
	fmt.Printf("attacker observed a %v (bandwidth plateau)\n", res.Detected)

	joinPhases := ragnar.JoinPhases(ragnar.CX5, 3, 5, 150*ragnar.Millisecond)
	last := joinPhases[len(joinPhases)-1]
	res = ragnar.Fingerprint(mon, det, joinPhases, last.Start+last.Dur+150*ragnar.Millisecond)
	fmt.Printf("attacker observed a %v (tooth-shaped bursts)\n", res.Detected)

	smjPhases := ragnar.SortMergePhases(ragnar.CX5, 3, 2000, 150*ragnar.Millisecond)
	res = ragnar.Fingerprint(mon, det, smjPhases, smjPhases[0].Start+smjPhases[0].Dur+150*ragnar.Millisecond)
	fmt.Printf("attacker observed a %v (read plateau, shallower drop)\n", res.Detected)

	res = ragnar.Fingerprint(mon, det, nil, 400*ragnar.Millisecond)
	fmt.Printf("attacker observed %v traffic when the database idled\n", res.Detected)
}
