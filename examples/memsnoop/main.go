// Disaggregated-memory snoop demo (Section VI-B): a victim compute server
// looks up keys in a Sherman-style remote B+ tree; an attacker sharing the
// memory server recovers WHICH index region the victim touches, purely from
// the Grain-IV offset effect on its own probe latency.
package main

import (
	"fmt"
	"log"

	"github.com/thu-has/ragnar"
)

func main() {
	// --- Part 1: the disaggregated B+ tree works -------------------------
	cfg := ragnar.DefaultClusterConfig(ragnar.CX6)
	cfg.Clients = 2
	cluster := ragnar.NewCluster(cfg)
	ms, err := ragnar.NewMemoryServer(cluster, 2<<20)
	if err != nil {
		log.Fatal(err)
	}
	client, err := ragnar.NewTreeClient(cluster, ms, 0)
	if err != nil {
		log.Fatal(err)
	}
	var v [ragnar.TreeValueBytes]byte
	copy(v[:], "patient-record-774")
	for k := uint64(0); k < 100; k++ {
		val := v
		val[len(val)-1] = byte(k)
		if err := client.Insert(k, val); err != nil {
			log.Fatal(err)
		}
	}
	got, ok, err := client.Get(77)
	if err != nil || !ok {
		log.Fatalf("lookup failed: %v ok=%v", err, ok)
	}
	leafOff, err := client.LeafOffsetOf(77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B+ tree over RDMA: key 77 -> %q, stored in leaf at MR offset %d\n",
		got[:18], leafOff)
	fmt.Printf("(every Get/Insert is real verbs traffic: %d reads, %d writes so far)\n\n",
		client.Reads, client.Writes)

	// --- Part 2: the snoop attack ----------------------------------------
	// The victim repeatedly reads one of 17 candidate offsets in a shared
	// region; the attacker probes 257 observation offsets and recovers it.
	snoopCfg := ragnar.DefaultSnoopConfig(ragnar.CX4)
	snoopCfg.ProbesPerOffset = 8
	snooper, err := ragnar.NewSnooper(snoopCfg)
	if err != nil {
		log.Fatal(err)
	}
	const secretOffset = 448 // the victim's secret: which 64 B entry it reads
	trace, err := snooper.CaptureTrace(secretOffset)
	if err != nil {
		log.Fatal(err)
	}

	// Classify by TPU bank: observation offsets sharing the victim's bank
	// show elevated ULI.
	banks := uint64(ragnar.CX4.TPUBanks)
	best, bestScore := uint64(0), -1e18
	for _, cand := range snoopCfg.Candidates {
		var sum float64
		var n int
		for i, off := range snoopCfg.Observation {
			if (off/64)%banks == (cand/64)%banks {
				sum += trace[i]
				n++
			}
		}
		if score := sum / float64(n); score > bestScore {
			best, bestScore = cand, score
		}
	}
	fmt.Printf("victim secretly read offset %d; attacker's trace analysis says %d\n",
		secretOffset, best)
	if best == secretOffset {
		fmt.Println("=> exact recovery. The paper's ResNet18 classifier reaches 95.6%")
		fmt.Println("   over all 17 candidates; run `snoop classify` or the fig13 bench")
		fmt.Println("   for the full classifier pipeline.")
	} else {
		fmt.Println("=> recovered the wrong candidate on this trace; the classifier")
		fmt.Println("   pipeline averages many traces to reach paper-level accuracy.")
	}
}
