// Command benchguard is the allocation gate behind `make benchguard` and the
// bench-guard CI job. It reads `go test -bench -benchmem` output on stdin and
// fails when any guarded benchmark reports more than zero allocs/op — the
// scheduler hot path, the disabled-recorder emit path, the switch
// forwarding path, the ICM context-cache hit path, the no-adversary link
// injection-hook path, the CQ PollInto drain path and the egress arbiter
// pick (both strategies) are
// required to stay allocation-free, and this gate is
// what turns a regression into a red build instead of a slow simulator.
//
// Usage:
//
//	go test -run '^$' -bench '^(BenchmarkEngine|BenchmarkEmitDisabled|BenchmarkSwitchForward|BenchmarkContextCacheHit|BenchmarkLinkAdversaryOff|BenchmarkCQPollInto|BenchmarkArbiterPick)' \
//	    -benchtime 1000x -benchmem ./internal/sim ./internal/sim/parallel ./internal/trace ./internal/fabric ./internal/nic ./internal/verbs \
//	    | go run ./scripts/benchguard.go -min 12
//
// The gate also fails when fewer guarded benchmarks appear than expected
// (-min, default 7; the Makefile passes 12 to include the inter-domain
// channel ping-pong, the adversary-off link path, the CQ drain path and
// both egress-arbiter strategies): a renamed or deleted benchmark must not silently drop out of
// the guard.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// guarded matches the benchmarks that must stay at 0 allocs/op. Amortised
// B/op from slab growth is allowed; allocation count is not.
var guarded = regexp.MustCompile(`^Benchmark(Engine\w*|EmitDisabled|SwitchForward|ContextCacheHit|LinkAdversaryOff|CQPollInto|ArbiterPick(?:/[\w-]+)?)$`)

// benchLine captures "BenchmarkName-8  1000  123 ns/op  0 B/op  0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

var allocsField = regexp.MustCompile(`(\d+)\s+allocs/op`)

func main() {
	min := flag.Int("min", 7, "minimum number of guarded benchmarks that must appear")
	flag.Parse()

	seen := 0
	bad := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil || !guarded.MatchString(m[1]) {
			continue
		}
		am := allocsField.FindStringSubmatch(m[2])
		if am == nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s has no allocs/op field (run with -benchmem)\n", m[1])
			bad++
			continue
		}
		allocs, err := strconv.Atoi(am[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: bad allocs/op %q\n", m[1], am[1])
			bad++
			continue
		}
		seen++
		status := "ok"
		if allocs > 0 {
			status = "FAIL"
			bad++
		}
		fmt.Printf("benchguard: %-40s %d allocs/op  %s\n", m[1], allocs, status)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if seen < *min {
		fmt.Fprintf(os.Stderr, "benchguard: only %d guarded benchmarks seen, want >= %d — benchmark renamed or bench run incomplete?\n", seen, *min)
		os.Exit(1)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmark(s) allocate on the hot path\n", bad)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d guarded benchmarks allocation-free\n", seen)
}
