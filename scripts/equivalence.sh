#!/bin/sh
# End-to-end parallel-vs-sequential equivalence check: the headline
# correctness property of the sweep engine is that -workers changes only
# wall-clock time, never a byte of output. Runs the converted experiments
# through the real CLI at -workers=1 and -workers=4 and diffs the output.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/ragnar" ./cmd/ragnar

for exp in fig4 fig5 fig6 fig8 table5 lossgrid tenants exhaust; do
	"$tmp/ragnar" -workers 1 -seed 7 "$exp" >"$tmp/seq.out"
	"$tmp/ragnar" -workers 4 -seed 7 "$exp" >"$tmp/par.out"
	if ! cmp -s "$tmp/seq.out" "$tmp/par.out"; then
		echo "equivalence FAILED for $exp:" >&2
		diff "$tmp/seq.out" "$tmp/par.out" >&2 || true
		exit 1
	fi
	echo "equivalence OK: $exp (-workers=1 == -workers=4)"
done
