#!/usr/bin/env bash
# End-to-end equivalence checks on the shipped CLI, two axes:
#
#   1. Worker parallelism: -workers changes only wall-clock time, never a
#      byte of output. Every converted experiment runs at -workers=1 and
#      -workers=4 and the outputs are diffed.
#   2. Engine partitioning: -domains selects how many engine domains a
#      partitionable fabric (clos) is split across; the conservative
#      parallel engine must produce byte-identical results at any count.
#      Every experiment runs at -domains 1, 2 and 6 — for clos that
#      exercises the window protocol end to end, for the single-engine
#      experiments it pins that the flag is inert. Only the rendered
#      domain-count header may differ, so it is normalized before the diff.
set -euo pipefail

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/ragnar" ./cmd/ragnar

exps="fig4 fig5 fig6 fig8 table5 lossgrid tenants exhaust nvmf clos defgrid redn"

# The only line that may legitimately vary across -domains is the rendered
# domain count itself.
normalize() {
	sed 's/[0-9]* engine domain(s)/N engine domain(s)/'
}

for exp in $exps; do
	"$tmp/ragnar" -workers 1 -domains 2 -seed 7 "$exp" >"$tmp/seq.out"
	"$tmp/ragnar" -workers 4 -domains 2 -seed 7 "$exp" >"$tmp/par.out"
	if ! cmp -s "$tmp/seq.out" "$tmp/par.out"; then
		echo "equivalence FAILED for $exp:" >&2
		diff "$tmp/seq.out" "$tmp/par.out" >&2 || true
		exit 1
	fi
	echo "equivalence OK: $exp (-workers=1 == -workers=4)"
done

for exp in $exps; do
	"$tmp/ragnar" -workers 2 -domains 1 -seed 7 "$exp" | normalize >"$tmp/serial.out"
	for d in 2 6; do
		"$tmp/ragnar" -workers 2 -domains "$d" -seed 7 "$exp" | normalize >"$tmp/part.out"
		if ! cmp -s "$tmp/serial.out" "$tmp/part.out"; then
			echo "partitioned-engine equivalence FAILED for $exp at -domains $d:" >&2
			diff "$tmp/serial.out" "$tmp/part.out" >&2 || true
			exit 1
		fi
	done
	echo "equivalence OK: $exp (-domains 1 == 2 == 6)"
done
