#!/usr/bin/env bash
# Refresh the machine-readable performance baseline.
#
# Runs the rebench bench probes (scheduler hot path, covert-channel
# transmits, lossgrid) and writes BENCH_<date>.json at the repo root —
# check the file in so perf history travels with the code. Pass an output
# path to override, e.g. scripts/bench.sh /tmp/after.json for a local
# before/after comparison. See EXPERIMENTS.md "Performance baseline" for
# how to read the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
OUT=${1:-BENCH_$(date -u +%F).json}

"$GO" run ./cmd/rebench -nic cx5 bench -out "$OUT"
