#!/usr/bin/env bash
# Fuzz-target enumeration check. `go test -fuzz` accepts a single matching
# target per invocation, so the fuzz-smoke CI job lists every Fuzz* function
# explicitly. This script fails when a fuzz target exists in the tree but is
# missing from that enumeration (a new target that would silently never
# smoke), and when the enumeration names a target that no longer exists (a
# rename that would silently fuzz nothing).
set -euo pipefail
cd "$(dirname "$0")/.."

wf=.github/workflows/ci.yml
bad=0

targets=$(grep -rhoE '^func Fuzz[A-Za-z0-9_]+\(' --include='*_test.go' . |
	sed -E 's/^func (Fuzz[A-Za-z0-9_]+)\(/\1/' | sort -u)

for t in $targets; do
	if ! grep -qF -- "-fuzz '^${t}\$'" "$wf"; then
		echo "fuzzcheck: $t is not enumerated in the $wf fuzz-smoke job" >&2
		bad=1
	fi
done

# Reverse direction: every enumerated target must still exist.
for t in $(grep -- '-fuzz' "$wf" | grep -oE 'Fuzz[A-Za-z0-9_]+' | sort -u); do
	if ! printf '%s\n' "$targets" | grep -qx -- "$t"; then
		echo "fuzzcheck: $wf smokes $t, which no longer exists in the tree" >&2
		bad=1
	fi
done

if [ "$bad" -ne 0 ]; then
	exit 1
fi
echo "fuzzcheck: all $(printf '%s\n' "$targets" | grep -c .) fuzz targets enumerated in CI"
