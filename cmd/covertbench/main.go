// Command covertbench transmits payloads over the three Ragnar covert
// channels (and the Pythia baseline) and reports Table V-style figures of
// merit.
//
// Usage examples:
//
//	covertbench -channel intermr -nic cx5 -bits 512
//	covertbench -channel priority -nic cx4
//	covertbench -channel pythia -nic cx5 -bits 64
//	covertbench -channel intramr -nic cx6 -message "attack at dawn"
//	covertbench -channel all -bits 128 -workers 8   # full Table V grid, parallel
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/experiments"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/pcap"
	"github.com/thu-has/ragnar/internal/pythia"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/trace"
)

func main() {
	channel := flag.String("channel", "intermr", "priority, intermr, intramr, pythia, or all (Table V grid)")
	nicName := flag.String("nic", "cx5", "adapter (cx4, cx5, cx6)")
	bits := flag.Int("bits", 256, "random payload length (ignored with -message)")
	message := flag.String("message", "", "ASCII payload to transmit instead of random bits")
	seed := flag.Int64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for -channel all (1 = sequential; results are identical at any count)")
	pcapPath := flag.String("pcap", "", "capture the sender's wire traffic to this pcap file (intermr/intramr)")
	tracePath := flag.String("trace", "", "record the run's flight-recorder trace to this Chrome trace JSON file")
	flag.Parse()

	prof, ok := nic.ProfileByName(*nicName)
	if !ok {
		fatalf("unknown NIC %q", *nicName)
	}
	payload := bitstream.RandomBits(uint64(*seed)|1, *bits)
	if *message != "" {
		payload = bitstream.FromBytes([]byte(*message))
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(*channel+"/"+prof.Name, trace.DefaultCapacity)
		defer writeTrace(rec, *tracePath)
	}

	switch *channel {
	case "priority":
		if len(payload) > 32 {
			payload = payload[:32] // ~1 bps: keep virtual time sane
		}
		ch := covert.NewPriorityChannel(prof)
		ch.Trace = rec
		run := ch.Transmit(payload, *seed)
		report(run.Result, payload, run.Decoded, *message)
	case "intermr", "intramr":
		var ch *covert.ULIChannel
		var err error
		if *channel == "intermr" {
			ch, err = covert.NewInterMRChannel(prof, *seed)
		} else {
			ch, err = covert.NewIntraMRChannel(prof, *seed)
		}
		if err != nil {
			fatalf("%v", err)
		}
		if rec != nil {
			ch.Cluster.AttachRecorder(rec)
			ch.Trace = rec
		}
		if *pcapPath != "" {
			f, err := os.Create(*pcapPath)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			w, err := pcap.NewWriter(f)
			if err != nil {
				fatalf("%v", err)
			}
			ch.TxConn.Client.NIC().Tap = func(at sim.Time, frame []byte) {
				if err := w.WritePacket(at, frame); err != nil {
					fatalf("%v", err)
				}
			}
			defer func() {
				fmt.Printf("pcap      %s (%d sender frames)\n", *pcapPath, w.Packets())
			}()
		}
		run, err := ch.Transmit(payload)
		if err != nil {
			fatalf("%v", err)
		}
		report(run.Result, payload, run.Decoded, *message)
	case "all":
		r, err := experiments.Table5(*bits, *seed, *workers)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(r.Render())
	case "pythia":
		ch, err := pythia.New(prof, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		run, err := ch.Transmit(payload)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("channel   %s on %s\n", run.Result.Channel, run.Result.NIC)
		fmt.Printf("bandwidth %.1f Kbps raw, %.1f Kbps effective, %.2f%% errors\n",
			run.Result.BandwidthBps/1000, run.Result.EffectiveBps/1000, run.Result.ErrorRate*100)
	default:
		fatalf("unknown channel %q", *channel)
	}
}

func report(r covert.Result, sent, got bitstream.Bits, message string) {
	fmt.Printf("channel   %s on %s\n", r.Channel, r.NIC)
	fmt.Printf("payload   %d bits\n", r.SentBits)
	fmt.Printf("bandwidth %.1f Kbps raw, %.1f Kbps effective\n", r.BandwidthBps/1000, r.EffectiveBps/1000)
	fmt.Printf("errors    %.2f%%\n", r.ErrorRate*100)
	if message != "" {
		fmt.Printf("sent      %q\n", message)
		fmt.Printf("received  %q\n", string(got.ToBytes()))
	} else if len(sent) <= 64 {
		fmt.Printf("sent      %s\n", sent)
		fmt.Printf("received  %s\n", got)
	}
}

// writeTrace exports the recorder to a Chrome trace JSON file. Channels
// without a recorder hook (pythia, the parallel all-grid) leave the recorder
// empty; the file is still valid.
func writeTrace(rec *trace.Recorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := trace.WriteChrome(f, rec); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("trace     %s (%d events)\n", path, rec.Len())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covertbench: "+format+"\n", args...)
	os.Exit(1)
}
