// Command ragnar regenerates the paper's tables and figures by id.
//
// Usage:
//
//	ragnar [-nic cx4|cx5|cx6] [-full] [-seed N] <experiment> [...]
//
// Experiments: table1 table3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// table5 lossgrid tenants exhaust nvmf pythia fig12 fig13 defense defgrid
// redn clos all
//
// The trace subcommand re-runs an experiment rig with the flight recorder
// attached and exports the event stream:
//
//	ragnar trace [-o out.json] [-text] <fig9|intermr|intramr|lossgrid>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/thu-has/ragnar/internal/experiments"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/trace"
)

func main() {
	nicName := flag.String("nic", "cx4", "adapter for single-NIC experiments (cx4, cx5, cx6, cx5-iso)")
	full := flag.Bool("full", false, "run paper-scale parameter spaces (slower)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for sweeps (1 = sequential; results are identical at any count)")
	domains := flag.Int("domains", 1, "engine domains for partitionable fabrics (clos; results are identical at any count)")
	perClass := flag.Int("perclass", 12, "fig13 traces per class (paper: ~395)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of rendered tables")
	flag.Parse()
	emitJSON = *jsonOut
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "ragnar: -workers %d invalid, using %d\n", *workers, runtime.GOMAXPROCS(0))
		*workers = runtime.GOMAXPROCS(0)
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ragnar [flags] <table1|table3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table5|lossgrid|tenants|exhaust|nvmf|pythia|fig12|fig13|defense|defgrid|redn|clos|all>")
		fmt.Fprintln(os.Stderr, "       ragnar [flags] trace [-o out.json] [-text] <fig9|intermr|intramr|lossgrid>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prof, ok := nic.ProfileByName(*nicName)
	if !ok {
		fatalf("unknown NIC %q (available: %s)", *nicName, strings.Join(nic.ProfileNames(), ", "))
	}

	if flag.Arg(0) == "trace" {
		if err := runTrace(flag.Args()[1:], prof, *seed); err != nil {
			fatalf("trace: %v", err)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table3", "fig4", "fig5", "fig6", "fig7", "fig8",
			"fig9", "fig10", "fig11", "table5", "lossgrid", "tenants", "exhaust", "nvmf", "pythia", "fig12", "fig13", "defense", "defgrid", "redn", "clos"}
	}
	for _, exp := range args {
		if err := run(exp, prof, *full, *seed, *perClass, *workers, *domains); err != nil {
			fatalf("%s: %v", exp, err)
		}
	}
}

// emitJSON switches output to JSON (set by the -json flag).
var emitJSON bool

// emit prints a result either rendered or as JSON.
func emit(result any, render func() string) error {
	if !emitJSON {
		fmt.Print(render())
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

func run(exp string, prof nic.Profile, full bool, seed int64, perClass, workers, domains int) error {
	probes := 200
	if full {
		probes = 600
	}
	switch exp {
	case "table1":
		rows := experiments.Table1()
		return emit(rows, func() string { return experiments.RenderTable1(rows) })
	case "table2", "table3":
		fmt.Print(experiments.RenderTable3())
	case "fig4":
		for _, p := range pick(prof, full) {
			r := experiments.Fig4(p, full, workers)
			if err := emit(r, r.Render); err != nil {
				return err
			}
		}
	case "fig5":
		r, err := experiments.Fig5(prof, probes, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "fig6":
		r, err := experiments.Fig6(prof, probes, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "fig7":
		r, err := experiments.Fig7(prof, probes, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "fig8":
		r, err := experiments.Fig8(prof, probes, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "fig9":
		r := experiments.Fig9(seed, workers)
		return emit(r, r.Render)
	case "fig10":
		r, err := experiments.Fig10(seed)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "fig11":
		r, err := experiments.Fig11(seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "table5":
		bits := 128
		if full {
			bits = 1024
		}
		r, err := experiments.Table5(bits, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "lossgrid":
		bits, reps := 96, 2
		if full {
			bits, reps = 512, 5
		}
		r, err := experiments.LossGrid(prof, bits, reps, nil, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "tenants":
		victims := 3
		if full {
			victims = 6
		}
		r, err := experiments.Tenants(prof, victims, nil, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "exhaust":
		victims := 3
		if full {
			victims = 6
		}
		r, err := experiments.Exhaust(prof, victims, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "nvmf":
		r, err := experiments.Nvmf(prof, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "pythia":
		r, err := experiments.PythiaCompare(64, seed)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "fig12":
		r := experiments.Fig12(prof, seed)
		return emit(r, r.Render)
	case "fig13":
		if full {
			perClass = 395 // the paper's 6720-trace corpus
		}
		r, err := experiments.Fig13(prof, perClass, seed)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "defense":
		r, err := experiments.DefenseEval(prof, seed)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "defgrid":
		r, err := experiments.DefGrid(prof, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "redn":
		r, err := experiments.Redn(prof, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	case "clos":
		r, err := experiments.Clos(prof, domains, full, seed, workers)
		if err != nil {
			return err
		}
		return emit(r, r.Render)
	default:
		return fmt.Errorf("unknown experiment (try table1 table3 fig4..fig13 table5 lossgrid tenants exhaust nvmf pythia defense defgrid redn clos)")
	}
	return nil
}

// runTrace handles the trace subcommand: run one experiment rig with the
// flight recorder attached, then export Chrome trace JSON (default) or the
// text timeline. A summary of the run and the metrics digest go to stderr so
// `-o -` keeps stdout machine-readable.
func runTrace(argv []string, prof nic.Profile, seed int64) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "trace.json", "output path (- for stdout)")
	text := fs.Bool("text", false, "emit the text timeline instead of Chrome JSON")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: ragnar trace [-o out.json] [-text] <fig9|intermr|intramr|lossgrid>")
	}
	o, err := experiments.Trace(fs.Arg(0), prof, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *text {
		err = o.WriteText(w)
	} else {
		err = o.WriteChrome(w)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, o.Summary)
	fmt.Fprint(os.Stderr, trace.Summary(o.Recorder))
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped by ring) -> %s\n",
			o.Recorder.Len(), o.Recorder.Dropped(), *out)
	}
	return nil
}

// pick returns all NICs in full mode, else just the selected one.
func pick(prof nic.Profile, full bool) []nic.Profile {
	if full {
		return nic.PaperProfiles
	}
	return []nic.Profile{prof}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ragnar: "+format+"\n", args...)
	os.Exit(1)
}
