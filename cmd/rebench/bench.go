package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/thu-has/ragnar/internal/appnvmf"
	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/experiments"
	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/rednlite"
	"github.com/thu-has/ragnar/internal/sim"
	parsim "github.com/thu-has/ragnar/internal/sim/parallel"
)

// The bench subcommand is the repo's machine-readable perf baseline: it runs
// the hot-path benchmarks through testing.Benchmark and emits one JSON
// document per run, designed to be checked in as BENCH_<date>.json (see
// scripts/bench.sh and EXPERIMENTS.md "Performance baseline"). Eleven
// probes:
//
//   - engine-schedule-fire: raw scheduler cost, one self-rescheduling event
//     (the same steady-state pattern the bench-guard CI job gates at
//     0 allocs/op);
//   - switch-forward: per-packet cost of the switched-fabric forwarding
//     path — ingress lookup, shared-buffer admission, forwarding pipe,
//     egress ETS scheduling, serialization and propagation (the
//     BenchmarkSwitchForward pattern, also gated at 0 allocs/op);
//   - context-cache-hit: resident ICM context lookup on the NIC datapath
//     (the BenchmarkContextCacheHit pattern, also gated at 0 allocs/op);
//   - engine-parallel: inter-domain channel ping-pong between two engine
//     domains — each op is one full stage→barrier→drain→deliver window of
//     the conservative parallel engine (BenchmarkEngineParallelXfer, gated
//     at 0 allocs/op);
//   - clos-forward: a cross-leaf WRITE burst through the partitioned
//     leaf-spine fabric (2 engine domains), NIC-to-NIC via ECMP trunks;
//   - channel-inter-mr / channel-intra-mr: full covert-channel transmits —
//     NIC + fabric + transport — with simulated events/sec derived from the
//     engine's fired-event counter;
//   - nvmf-io: a 1 ms slice of the NVMe-oF storage victim — command capsule
//     SENDs, target data-phase WRITE/READ, completion capsules — the ULP hot
//     path the nvmf attack cells stress, including the per-QP placement gate
//     on the responder;
//   - redn-chain: a full RedN-lite offloaded branch — CAS gate, WAIT/ENABLE
//     cross-QP doorbells, the self-modifying gate patch and the taken-arm
//     write burst — assembled, launched and drained to completion (the SQ
//     state-machine management pipeline hot);
//   - lossgrid: the heaviest composite experiment (retransmission paths hot);
//   - defgrid: the defense Pareto grid — the full attack battery against the
//     CX5-ISO hardening ladder (DWRR arbitration, constant-time TPU and
//     AES-per-verb paths all hot).

// benchSchema names the JSON layout so future sessions can evolve it without
// silently breaking comparisons.
const benchSchema = "ragnar-bench/v1"

type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// EventsPerSec is simulator events executed per wall-clock second
	// (engine throughput for the scheduler probe, whole-stack event rate for
	// the channel probes). Zero when the probe does not track events.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// SimEventsPerOp is the number of engine events one operation fires.
	SimEventsPerOp uint64 `json:"sim_events_per_op,omitempty"`
}

type benchDoc struct {
	Schema     string        `json:"schema"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	NIC        string        `json:"nic"`
	Seed       int64         `json:"seed"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func benchCmd(prof nic.Profile, seed int64, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "write the JSON document to stdout instead of a table")
	out := fs.String("out", "", "also write the JSON document to this file (table still goes to stdout)")
	fs.Parse(args)

	doc := benchDoc{
		Schema:    benchSchema,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		NIC:       prof.Name,
		Seed:      seed,
	}

	// Scheduler steady state: one event rescheduling itself b.N times, so
	// every iteration is exactly one schedule+fire pair and ns/op is the
	// per-event cost.
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(seed)
		n := 0
		var fn func()
		fn = func() {
			n++
			if n < b.N {
				e.After(10*sim.Nanosecond, fn)
			}
		}
		b.ResetTimer()
		e.After(sim.Nanosecond, fn)
		e.Run()
	})
	doc.Benchmarks = append(doc.Benchmarks, record("engine-schedule-fire", r, 1))

	// Switch forwarding steady state: a paced injector streams 1 KB packets
	// through a one-output switch (1024 B at 100 Gbps serializes in ~82 ns,
	// under the 200 ns pace, so queues stay bounded). Each op is one packet
	// end to end; events/op comes from the engine's fired counter.
	var swFired uint64
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine(seed)
		sw := fabric.NewSwitch(e, fabric.SwitchConfig{
			Name:           "bench",
			FwdDelay:       300 * sim.Nanosecond,
			SharedBufBytes: 1 << 20,
			XOffBytes:      96 << 10,
		})
		out := sw.AddPort("host", 100, 100*sim.Nanosecond, 0, fabric.DefaultQoS(), func(fabric.Packet) {})
		sw.Route(1, out)
		n := 0
		var inject func()
		inject = func() {
			n++
			sw.Ingress(fabric.Packet{TC: 3, Bytes: 1024, Dst: 1})
			if n < b.N {
				e.After(200*sim.Nanosecond, inject)
			}
		}
		b.ResetTimer()
		e.After(sim.Nanosecond, inject)
		e.Run()
		swFired = e.Fired()
	})
	doc.Benchmarks = append(doc.Benchmarks, record("switch-forward", r, swFired/uint64(r.N)))

	// ICM context-cache hit path: one resident lookup per op against a
	// CX5-sized cache, with a working set large enough to splice non-head
	// LRU nodes. Pure data-structure probe — no engine, so no events/sec.
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		c := nic.NewContextCache(2048)
		const keys = 512
		for i := uint32(0); i < keys; i++ {
			c.Access(nic.QPCtxKey(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !c.Access(nic.QPCtxKey(uint32(i) % keys)) {
				b.Fatal("hit path missed")
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("context-cache-hit", r, 0))

	// Inter-domain channel steady state: two domains ping-ponging one packet,
	// one synchronization window per hop — the parallel engine's per-transfer
	// floor (barrier, drain, delivery event).
	var ppFired uint64
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		const look = 100 * sim.Nanosecond
		g := parsim.NewGroup()
		da := g.AddDomain(sim.NewEngine(seed))
		db := g.AddDomain(sim.NewEngine(seed))
		n := 0
		var ab, ba *parsim.Chan
		ab = g.Connect(da, db, look, func(p fabric.Packet) {
			ba.Send(db.Eng.Now().Add(look), p)
		})
		ba = g.Connect(db, da, look, func(p fabric.Packet) {
			n++
			if n < b.N {
				ab.Send(da.Eng.Now().Add(look), p)
			}
		})
		b.ResetTimer()
		da.Eng.At(da.Eng.Now().Add(look), func() {
			ab.Send(da.Eng.Now().Add(look), fabric.Packet{Dst: 1, Bytes: 1024})
		})
		g.Run()
		ppFired = da.Eng.Fired() + db.Eng.Fired()
	})
	doc.Benchmarks = append(doc.Benchmarks, record("engine-parallel", r, ppFired/uint64(r.N)))

	// Partitioned-fabric forwarding: one op is a 32-WRITE burst from a
	// far-leaf client to the server across the 2-domain Clos — trunk channels,
	// ECMP hashing and the window protocol all on the path.
	var closFired uint64
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := lab.Clos(lab.ClosConfig{Seed: seed + int64(i), Profile: prof, Domains: 2})
			mr, err := c.RegisterServerMR(1 << 20)
			if err != nil {
				b.Fatal(err)
			}
			conn, err := c.Dial(len(c.Clients)-1, 32)
			if err != nil {
				b.Fatal(err)
			}
			for w := 0; w < 32; w++ {
				if err := conn.QP.PostWrite(uint64(w), nil, mr.Describe(uint64(w)*2048), 2048); err != nil {
					b.Fatal(err)
				}
			}
			c.Run()
			closFired = 0
			for _, e := range c.Engines {
				closFired += e.Fired()
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("clos-forward", r, closFired))

	payload := bitstream.RandomBits(7, 64)
	for _, ch := range []struct {
		name string
		mk   func(nic.Profile, int64) (*covert.ULIChannel, error)
	}{
		{"channel-inter-mr", covert.NewInterMRChannel},
		{"channel-intra-mr", covert.NewIntraMRChannel},
	} {
		var fired uint64
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := ch.mk(prof, seed+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Transmit(payload); err != nil {
					b.Fatal(err)
				}
				fired = c.Cluster.Eng.Fired()
			}
		})
		doc.Benchmarks = append(doc.Benchmarks, record(ch.name, r, fired))
	}

	// NVMe-oF I/O steady state: one op runs the appnvmf victim rig for 1 ms
	// of virtual time — initiator capsules, target data phase and completions
	// over the RC transport — then drains. Events/sec from the engine's fired
	// counter covers the whole stack (host DMA, NIC pipelines, fabric).
	var ioFired uint64
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := lab.New(lab.Config{Profile: prof, Seed: seed + int64(i)})
			tgt, err := appnvmf.NewTarget(c.Server, 2<<20)
			if err != nil {
				b.Fatal(err)
			}
			tq, err := tgt.Serve(64)
			if err != nil {
				b.Fatal(err)
			}
			ini, err := appnvmf.NewInitiator(c.Clients[0], tq, appnvmf.DefaultWorkload(seed+int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			ini.Start()
			c.RunFor(sim.Millisecond)
			ini.Stop()
			c.Run()
			ioFired = c.Eng.Fired()
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("nvmf-io", r, ioFired))

	// RedN-lite chain steady state: one op assembles the offloaded branch
	// (taken arm), launches it with one doorbell and drains the whole chain —
	// CAS, both barriers, the gate self-modify, the ENABLE release and the
	// unrolled write-burst loop all retire through the SQ state machine.
	var chainFired uint64
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := lab.New(lab.Config{Profile: prof, Seed: seed + int64(i)})
			mr, err := c.RegisterServerMR(2 << 20)
			if err != nil {
				b.Fatal(err)
			}
			mainConn, err := c.Dial(0, 64)
			if err != nil {
				b.Fatal(err)
			}
			branchConn, err := c.Dial(0, 1024)
			if err != nil {
				b.Fatal(err)
			}
			code, err := branchConn.Client.AllocPD().RegMR(1024*nic.SQSlotBytes, host.Page4K, 0)
			if err != nil {
				b.Fatal(err)
			}
			mainLane, err := rednlite.NewLane(mainConn.QP, mainConn.CQ, nil)
			if err != nil {
				b.Fatal(err)
			}
			branchLane, err := rednlite.NewLane(branchConn.QP, branchConn.CQ, code)
			if err != nil {
				b.Fatal(err)
			}
			flag := mr.Bytes()
			flag[0] = 7 // taken
			branch, err := rednlite.NewBranch(branchLane)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 4096)
			branch.Loop(16, func(ch *rednlite.Chain) {
				for k := 0; k < 4; k++ {
					ch.Write(payload, mr.Describe(uint64(512<<10+k*4096)), 4096)
				}
			})
			if err := rednlite.New(mainLane).If(mr.Describe(0), 7, branch).Launch(); err != nil {
				b.Fatal(err)
			}
			c.Run()
			chainFired = c.Eng.Fired()
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("redn-chain", r, chainFired))

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.LossGrid(prof, 96, 2, nil, seed+int64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("lossgrid", r, 0))

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.DefGrid(prof, seed+int64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("defgrid", r, 0))

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	}
	if *asJSON {
		os.Stdout.Write(blob)
		return nil
	}
	fmt.Printf("%s %s/%s %s, %d CPU, seed %d\n", doc.GoVersion, doc.GOOS, doc.GOARCH, doc.NIC, doc.CPUs, doc.Seed)
	fmt.Printf("%-22s %12s %14s %10s %12s %14s\n", "benchmark", "iters", "ns/op", "B/op", "allocs/op", "events/sec")
	for _, rec := range doc.Benchmarks {
		ev := "-"
		if rec.EventsPerSec > 0 {
			ev = fmt.Sprintf("%14.0f", rec.EventsPerSec)
		}
		fmt.Printf("%-22s %12d %14.1f %10d %12d %14s\n",
			rec.Name, rec.Iterations, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, ev)
	}
	if *out != "" {
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// record converts a testing.BenchmarkResult plus the per-op simulator event
// count into the JSON row.
func record(name string, r testing.BenchmarkResult, eventsPerOp uint64) benchRecord {
	rec := benchRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if eventsPerOp > 0 && rec.NsPerOp > 0 {
		rec.SimEventsPerOp = eventsPerOp
		rec.EventsPerSec = float64(eventsPerOp) * 1e9 / rec.NsPerOp
	}
	return rec
}
