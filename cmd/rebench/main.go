// Command rebench runs the reverse-engineering microbenchmarks directly:
// Grain-I/II contention pairs and Grain-III/IV ULI sweeps with custom
// parameters — the exploratory tool behind Section IV.
//
// Usage examples:
//
//	rebench -nic cx5 pair -aop write -asize 64 -aqp 4 -bop read -bsize 1024 -bqp 2
//	rebench -nic cx4 offsets -size 64 -from 0 -to 4096 -step 8
//	rebench -nic cx4 linearity
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/revengine"
	"github.com/thu-has/ragnar/internal/uli"
)

func main() {
	nicName := flag.String("nic", "cx4", "adapter (cx4, cx5, cx6, cx5-iso)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for sweeps (1 = sequential; results are identical at any count)")
	flag.Parse()
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "rebench: -workers %d invalid, using %d\n", *workers, runtime.GOMAXPROCS(0))
		*workers = runtime.GOMAXPROCS(0)
	}
	prof, ok := nic.ProfileByName(*nicName)
	if !ok {
		fatalf("unknown NIC %q (available: %s)", *nicName, strings.Join(nic.ProfileNames(), ", "))
	}
	if flag.NArg() == 0 {
		fatalf("usage: rebench [flags] <pair|offsets|reloffsets|intermr|linearity|bench>")
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "pair":
		err = pair(prof, rest)
	case "offsets":
		err = offsets(prof, rest, *seed, false, *workers)
	case "reloffsets":
		err = offsets(prof, rest, *seed, true, *workers)
	case "intermr":
		err = interMR(prof, rest, *seed, *workers)
	case "linearity":
		err = linearity(prof)
	case "bench":
		err = benchCmd(prof, *seed, rest)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func pair(prof nic.Profile, args []string) error {
	fs := flag.NewFlagSet("pair", flag.ExitOnError)
	aop := fs.String("aop", "write", "inducer opcode (write/read/send/atomic)")
	asize := fs.Int("asize", 64, "inducer message bytes")
	aqp := fs.Int("aqp", 4, "inducer QP count")
	bop := fs.String("bop", "read", "indicator opcode")
	bsize := fs.Int("bsize", 1024, "indicator message bytes")
	bqp := fs.Int("bqp", 2, "indicator QP count")
	rev := fs.Bool("reverse", false, "indicator posted from the server")
	fs.Parse(args)

	a := nic.FlowSpec{Name: "inducer", Op: parseOp(*aop), MsgBytes: *asize, QPNum: *aqp, Client: 0}
	b := nic.FlowSpec{Name: "indicator", Op: parseOp(*bop), MsgBytes: *bsize, QPNum: *bqp, Client: 1, FromServer: *rev}
	soloA, soloB := nic.Solo(prof, a), nic.Solo(prof, b)
	res := nic.Solve(prof, []nic.FlowSpec{a, b})
	fmt.Printf("%s\n", prof.Name)
	fmt.Printf("inducer   %6s %6dB qp%d: solo %7.2f Gbps, contended %7.2f Gbps (%+.0f%%)\n",
		a.Op, a.MsgBytes, a.QPNum, soloA.GoodputGbps, res[0].GoodputGbps, -nic.ReductionPct(soloA, res[0]))
	fmt.Printf("indicator %6s %6dB qp%d: solo %7.2f Gbps, contended %7.2f Gbps (%+.0f%%)\n",
		b.Op, b.MsgBytes, b.QPNum, soloB.GoodputGbps, res[1].GoodputGbps, -nic.ReductionPct(soloB, res[1]))
	return nil
}

func parseOp(s string) nic.Opcode {
	switch s {
	case "read":
		return nic.OpRead
	case "send":
		return nic.OpSend
	case "atomic":
		return nic.OpAtomicFAA
	default:
		return nic.OpWrite
	}
}

func offsets(prof nic.Profile, args []string, seed int64, relative bool, workers int) error {
	fs := flag.NewFlagSet("offsets", flag.ExitOnError)
	size := fs.Int("size", 64, "read size")
	from := fs.Uint64("from", 0, "first offset")
	to := fs.Uint64("to", 4096, "last offset")
	step := fs.Uint64("step", 8, "offset step")
	probes := fs.Int("probes", 300, "probes per offset")
	fs.Parse(args)

	var offs []uint64
	for o := *from; o <= *to; o += *step {
		if relative && o == 0 {
			continue
		}
		offs = append(offs, o)
	}
	var points []revengine.OffsetPoint
	var err error
	if relative {
		points, err = revengine.RelOffsetSweep(prof, *size, offs, *probes, seed, workers)
	} else {
		points, err = revengine.AbsOffsetSweep(prof, *size, offs, *probes, seed, workers)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: ULI vs %s offset, %dB reads\n", prof.Name, mode(relative), *size)
	for _, pt := range points {
		fmt.Printf("%8d %10.1f [%8.1f, %8.1f]\n", pt.Offset, pt.Trace.Mean, pt.Trace.P10, pt.Trace.P90)
	}
	return nil
}

func mode(rel bool) string {
	if rel {
		return "relative"
	}
	return "absolute"
}

func interMR(prof nic.Profile, args []string, seed int64, workers int) error {
	fs := flag.NewFlagSet("intermr", flag.ExitOnError)
	probes := fs.Int("probes", 300, "probes per point")
	fs.Parse(args)
	points, err := revengine.InterMRSweep(prof, []int{64, 128, 256, 512, 1024, 2048, 4096}, *probes, seed, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%s: ULI same vs different remote MR\n", prof.Name)
	for _, pt := range points {
		fmt.Printf("%6dB same %8.1f diff %8.1f (+%.1f ns)\n",
			pt.MsgSize, pt.SameMR.Mean, pt.DiffMR.Mean, pt.DiffMR.Mean-pt.SameMR.Mean)
	}
	return nil
}

func linearity(prof nic.Profile) error {
	c := lab.New(lab.DefaultConfig(prof))
	mr, err := c.RegisterServerMR(2 << 20)
	if err != nil {
		return err
	}
	mk := func(depth int) *uli.Prober {
		conn, err := c.Dial(0, depth+2)
		if err != nil {
			fatalf("%v", err)
		}
		if err := c.Warm(conn, mr); err != nil {
			fatalf("%v", err)
		}
		return &uli.Prober{QP: conn.QP, CQ: conn.CQ, Remote: mr.Describe(0), MsgSize: 1024, Depth: depth}
	}
	rep, err := uli.VerifyLinearity(c.Eng, mk, []int{4, 8, 16, 32, 64, 128, 256}, 120)
	if err != nil {
		return err
	}
	fmt.Printf("%s: Lat_total = k*(len_sq+1) + C\n", prof.Name)
	for i, d := range rep.Depths {
		fmt.Printf("depth %4d: %10.0f ns\n", d, rep.MeanLat[i])
	}
	fmt.Printf("k = %.1f ns, C = %.1f ns, Pearson = %.5f (paper: 0.9998)\n", rep.K, rep.C, rep.Pearson)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rebench: "+format+"\n", args...)
	os.Exit(1)
}
