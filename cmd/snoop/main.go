// Command snoop runs the Section VI side-channel attacks end to end:
// fingerprinting database operations and recovering a victim's access
// address on disaggregated memory.
//
// Usage examples:
//
//	snoop -nic cx5 fingerprint
//	snoop -nic cx4 address -victim 320
//	snoop -nic cx4 classify -perclass 24
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/thu-has/ragnar/internal/classifier"
	"github.com/thu-has/ragnar/internal/experiments"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/sidechan"
	"github.com/thu-has/ragnar/internal/stats"
)

func main() {
	nicName := flag.String("nic", "cx4", "adapter (cx4, cx5, cx6)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()
	prof, ok := nic.ProfileByName(*nicName)
	if !ok {
		fatalf("unknown NIC %q", *nicName)
	}
	if flag.NArg() == 0 {
		fatalf("usage: snoop [flags] <fingerprint|address|classify>")
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "fingerprint":
		fmt.Print(experiments.Fig12(prof, *seed).Render())
	case "address":
		err = address(prof, rest, *seed)
	case "classify":
		err = classify(prof, rest, *seed)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		fatalf("%v", err)
	}
}

// address captures a single trace and guesses the victim's offset by
// matching the elevated TPU bank.
func address(prof nic.Profile, args []string, seed int64) error {
	fs := flag.NewFlagSet("address", flag.ExitOnError)
	victim := fs.Uint64("victim", 320, "victim's secret offset (one of the 17 candidates)")
	probes := fs.Int("probes", 8, "ULI probes per observation offset")
	fs.Parse(args)

	cfg := sidechan.DefaultSnoopConfig(prof)
	cfg.Seed = seed
	cfg.ProbesPerOffset = *probes
	s, err := sidechan.NewSnooper(cfg)
	if err != nil {
		return err
	}
	// Calibrate against the attacker's own offset costs, then capture live.
	baseline, err := s.CaptureBaseline()
	if err != nil {
		return err
	}
	live, err := s.CaptureTrace(*victim)
	if err != nil {
		return err
	}
	trace := sidechan.Subtract(live, baseline)
	// Direct bank analysis: the candidate whose bank's observation offsets
	// score highest wins (the classifier-free view of Figure 13a).
	banks := uint64(prof.TPUBanks)
	best, bestScore := uint64(0), -1e18
	for _, cand := range cfg.Candidates {
		var same []float64
		for i, off := range cfg.Observation {
			if (off/64)%banks == (cand/64)%banks {
				same = append(same, trace[i])
			}
		}
		if score := stats.Mean(same); score > bestScore {
			best, bestScore = cand, score
		}
	}
	fmt.Printf("victim accessed offset %d; trace analysis recovers %d", *victim, best)
	if (best/64)%banks == (*victim/64)%banks {
		fmt.Printf("  (correct bank)\n")
	} else {
		fmt.Printf("  (WRONG)\n")
	}
	fmt.Println("trace (normalised ULI per observation offset):")
	norm := stats.Normalize(trace)
	for i := 0; i < len(norm); i += 8 {
		fmt.Printf("%5d %s\n", cfg.Observation[i], bar(norm[i]))
	}
	return nil
}

func bar(v float64) string {
	n := int(v * 50)
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}

// classify runs the full dataset + classifier pipeline (Figure 13b).
func classify(prof nic.Profile, args []string, seed int64) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	perClass := fs.Int("perclass", 12, "traces per candidate (paper: ~395)")
	epochs := fs.Int("epochs", 30, "CNN training epochs")
	fs.Parse(args)

	cfg := sidechan.DefaultSnoopConfig(prof)
	cfg.Seed = seed
	cnnCfg := classifier.DefaultCNNConfig()
	cnnCfg.Epochs = *epochs
	cnnCfg.Seed = seed
	rep, err := sidechan.RunSnoopAttack(cfg, *perClass, cnnCfg)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d traces, %d classes\n", rep.Traces, rep.Classes)
	fmt.Printf("nearest-centroid accuracy: %.1f%%\n", rep.CentroidAcc*100)
	fmt.Printf("CNN accuracy:              %.1f%%  (paper: 95.6%%)\n", rep.CNNAcc*100)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snoop: "+format+"\n", args...)
	os.Exit(1)
}
