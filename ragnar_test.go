// Tests exercising the public API surface exactly as a downstream user
// would: only the ragnar package, no internal imports.
package ragnar_test

import (
	"testing"

	"github.com/thu-has/ragnar"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cluster := ragnar.NewCluster(ragnar.DefaultClusterConfig(ragnar.CX5))
	mr, err := cluster.RegisterServerMR(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cluster.Dial(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Warm(conn, mr); err != nil {
		t.Fatal(err)
	}
	prober := &ragnar.Prober{
		QP: conn.QP, CQ: conn.CQ,
		Remote: mr.Describe(0), MsgSize: 64, Depth: 8,
	}
	samples, err := prober.Measure(cluster.Eng, 200)
	if err != nil {
		t.Fatal(err)
	}
	tr := ragnar.SummarizeULI(samples)
	if tr.Mean <= 0 || tr.N != 200 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestPublicContentionModel(t *testing.T) {
	flows := []ragnar.FlowSpec{
		{Name: "w", Op: ragnar.OpWrite, MsgBytes: 2048, QPNum: 4, Client: 0},
		{Name: "r", Op: ragnar.OpRead, MsgBytes: 1024, QPNum: 2, Client: 1},
	}
	res := ragnar.SolveContention(ragnar.CX5, flows)
	if len(res) != 2 || res[0].GoodputGbps <= 0 {
		t.Fatalf("results = %+v", res)
	}
	solo := ragnar.SoloBandwidth(ragnar.CX5, flows[1])
	if res[1].GoodputGbps >= solo.GoodputGbps {
		t.Fatal("2KB write should depress the read")
	}
}

func TestPublicCovertRoundTrip(t *testing.T) {
	ch, err := ragnar.NewIntraMRChannel(ragnar.CX4, 5)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ragnar.ParseBits("1011001")
	if err != nil {
		t.Fatal(err)
	}
	run, err := ch.Transmit(msg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.BandwidthBps < 30000 {
		t.Fatalf("bandwidth = %v", run.Result.BandwidthBps)
	}
}

func TestPublicProfileLookup(t *testing.T) {
	p, ok := ragnar.ProfileByName("connectx-6")
	if !ok || p.LineRateGbps != 200 {
		t.Fatalf("lookup = %+v %v", p, ok)
	}
	if len(ragnar.Profiles) != 4 {
		t.Fatal("profile list incomplete")
	}
	if len(ragnar.PaperProfiles) != 3 {
		t.Fatal("paper profile list incomplete")
	}
	iso, ok := ragnar.ProfileByName("cx5-iso")
	if !ok || iso.Name != "ConnectX-5-ISO" {
		t.Fatalf("iso lookup = %+v %v", iso, ok)
	}
}

func TestPublicTreeAndDB(t *testing.T) {
	cfg := ragnar.DefaultClusterConfig(ragnar.CX6)
	cfg.Clients = 2
	cluster := ragnar.NewCluster(cfg)
	ms, err := ragnar.NewMemoryServer(cluster, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	client, err := ragnar.NewTreeClient(cluster, ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	var v [ragnar.TreeValueBytes]byte
	v[0] = 42
	if err := client.Insert(7, v); err != nil {
		t.Fatal(err)
	}
	got, ok, err := client.Get(7)
	if err != nil || !ok || got[0] != 42 {
		t.Fatalf("tree get: %v %v %v", got[0], ok, err)
	}

	db, err := ragnar.NewDB(cluster, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]ragnar.Row, 50)
	for i := range rows {
		rows[i].Key = uint64(i)
	}
	db.LoadTable("t", rows)
	if err := db.Shuffle("t"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDefense(t *testing.T) {
	ch, err := ragnar.NewIntraMRChannel(ragnar.CX4, 9)
	if err != nil {
		t.Fatal(err)
	}
	uninstall := ragnar.NoiseMitigation(ch.Cluster.Server.NIC(), 500*ragnar.Nanosecond, ch.Cluster.Eng.Rand())
	defer uninstall()
	bits := ragnar.RandomBits(3, 32)
	run, err := ch.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.ErrorRate == 0 {
		t.Fatal("noise mitigation should corrupt the channel")
	}
}
