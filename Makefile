# Canonical verification entry points (wired into README).
#
#   make check      - everything CI needs: vet, build, race-enabled tests, and
#                     the parallel-vs-sequential equivalence check
#   make test       - plain test run (tier-1: go build ./... && go test ./...)
#   make bench      - regenerate the paper artifacts via the benchmark harness
#   make benchguard - allocation gate: scheduler, disabled-trace, switch
#                     forwarding and egress-arbiter hot paths must report
#                     0 allocs/op (same gate CI runs)
#   make perf       - refresh the machine-readable perf baseline
#                     (BENCH_<date>.json, see EXPERIMENTS.md)
#   make trace-demo - sample flight-recorder trace from the lossy covert rig
#                     (load trace-demo.json in chrome://tracing or Perfetto)

GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: check vet build test race equivalence bench benchguard perf trace-demo

check: vet build race equivalence

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# -race across the whole tree also covers the partitioned engine: the clos
# determinism tests run the window protocol's goroutines under the detector.
race:
	$(GO) test -race ./...

# Short-mode equivalence: the determinism suites (worker sweeps AND engine
# partitioning) plus an end-to-end CLI diff of -workers=1 vs -workers=4 and
# -domains=1 vs 2 vs 6 output on the converted experiments.
equivalence:
	$(GO) test -run 'Deterministic|Golden|StableAcross' ./internal/parallel ./internal/revengine ./internal/experiments ./internal/lab
	./scripts/equivalence.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# The hot paths the zero-alloc refactor bought must stay allocation-free:
# run the guarded benchmarks with -benchmem and gate on allocs/op == 0.
# ./internal/sim/parallel contributes the inter-domain channel ping-pong
# (BenchmarkEngineParallelXfer), so the window protocol's stage/drain/deliver
# cycle is gated alongside the serial scheduler.
benchguard:
	$(GO) test -run '^$$' -bench '^(BenchmarkEngine|BenchmarkEmitDisabled|BenchmarkSwitchForward|BenchmarkContextCacheHit|BenchmarkLinkAdversaryOff|BenchmarkCQPollInto|BenchmarkArbiterPick)' \
		-benchtime 1000x -benchmem ./internal/sim ./internal/sim/parallel ./internal/trace ./internal/fabric ./internal/nic ./internal/verbs \
		| $(GO) run ./scripts/benchguard.go -min 12

perf:
	./scripts/bench.sh

# A lossy inter-MR run has the richest trace: go-back-N NAK/rewind/retransmit
# chains, per-TC queueing spans and the receiver's ULI sample track.
# EXPERIMENTS.md walks through reading one.
trace-demo:
	$(GO) run ./cmd/ragnar trace -o trace-demo.json lossgrid
