# Canonical verification entry points (wired into README).
#
#   make check   - everything CI needs: vet, build, race-enabled tests, and
#                  the parallel-vs-sequential equivalence check
#   make test    - plain test run (tier-1: go build ./... && go test ./...)
#   make bench   - regenerate the paper artifacts via the benchmark harness

GO ?= go

.PHONY: check vet build test race equivalence bench

check: vet build race equivalence

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-mode equivalence: the determinism suites plus an end-to-end CLI diff
# of -workers=1 vs -workers=4 output on the converted experiments.
equivalence:
	$(GO) test -run 'Deterministic|Golden|StableAcross' ./internal/parallel ./internal/revengine ./internal/experiments
	./scripts/equivalence.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x
