# Canonical verification entry points (wired into README).
#
#   make check      - everything CI needs: vet, build, race-enabled tests, and
#                     the parallel-vs-sequential equivalence check
#   make test       - plain test run (tier-1: go build ./... && go test ./...)
#   make bench      - regenerate the paper artifacts via the benchmark harness
#   make benchguard - allocation gate: scheduler, disabled-trace and switch
#                     forwarding hot paths must report 0 allocs/op (same
#                     gate CI runs)
#   make perf       - refresh the machine-readable perf baseline
#                     (BENCH_<date>.json, see EXPERIMENTS.md)
#   make trace-demo - sample flight-recorder trace from the lossy covert rig
#                     (load trace-demo.json in chrome://tracing or Perfetto)

GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: check vet build test race equivalence bench benchguard perf trace-demo

check: vet build race equivalence

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-mode equivalence: the determinism suites plus an end-to-end CLI diff
# of -workers=1 vs -workers=4 output on the converted experiments.
equivalence:
	$(GO) test -run 'Deterministic|Golden|StableAcross' ./internal/parallel ./internal/revengine ./internal/experiments
	./scripts/equivalence.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# The hot paths the zero-alloc refactor bought must stay allocation-free:
# run the guarded benchmarks with -benchmem and gate on allocs/op == 0.
benchguard:
	$(GO) test -run '^$$' -bench '^(BenchmarkEngine|BenchmarkEmitDisabled|BenchmarkSwitchForward|BenchmarkContextCacheHit)' \
		-benchtime 1000x -benchmem ./internal/sim ./internal/trace ./internal/fabric ./internal/nic \
		| $(GO) run ./scripts/benchguard.go

perf:
	./scripts/bench.sh

# A lossy inter-MR run has the richest trace: go-back-N NAK/rewind/retransmit
# chains, per-TC queueing spans and the receiver's ULI sample track.
# EXPERIMENTS.md walks through reading one.
trace-demo:
	$(GO) run ./cmd/ragnar trace -o trace-demo.json lossgrid
