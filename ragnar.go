// Package ragnar is the public API of the Ragnar reproduction: a
// discrete-event RDMA NIC and fabric simulator, an ibverbs-like verbs layer,
// the paper's reverse-engineering microbenchmarks, the three volatile
// covert channels, the two real-application side channels and the defense
// study — everything needed to regenerate the tables and figures of
// "Ragnar: Exploring Volatile-Channel Vulnerabilities on RDMA NIC"
// (DAC 2025).
//
// The package re-exports the library's stable surface; the internal
// packages carry the implementation. A typical session:
//
//	cluster := ragnar.NewCluster(ragnar.DefaultClusterConfig(ragnar.CX5))
//	mr, _ := cluster.RegisterServerMR(2 << 20)
//	conn, _ := cluster.Dial(0, 10)
//	prober := &ragnar.Prober{QP: conn.QP, CQ: conn.CQ,
//	    Remote: mr.Describe(0), MsgSize: 64, Depth: 8}
//	samples, _ := prober.Measure(cluster.Eng, 1000)
//	fmt.Println(ragnar.SummarizeULI(samples))
//
// See the runnable programs under examples/ for complete scenarios.
package ragnar

import (
	"github.com/thu-has/ragnar/internal/appdb"
	"github.com/thu-has/ragnar/internal/appdisagg"
	"github.com/thu-has/ragnar/internal/bitstream"
	"github.com/thu-has/ragnar/internal/classifier"
	"github.com/thu-has/ragnar/internal/covert"
	"github.com/thu-has/ragnar/internal/defense"
	"github.com/thu-has/ragnar/internal/fabric"
	"github.com/thu-has/ragnar/internal/host"
	"github.com/thu-has/ragnar/internal/lab"
	"github.com/thu-has/ragnar/internal/nic"
	"github.com/thu-has/ragnar/internal/pythia"
	"github.com/thu-has/ragnar/internal/revengine"
	"github.com/thu-has/ragnar/internal/sidechan"
	"github.com/thu-has/ragnar/internal/sim"
	"github.com/thu-has/ragnar/internal/telemetry"
	"github.com/thu-has/ragnar/internal/uli"
	"github.com/thu-has/ragnar/internal/verbs"
)

// ---------------------------------------------------------------------------
// Simulation time
// ---------------------------------------------------------------------------

// Time is a point in virtual time (picoseconds since simulation start).
type Time = sim.Time

// Duration is a span of virtual time.
type Duration = sim.Duration

// Engine is the deterministic discrete-event scheduler all models run on.
type Engine = sim.Engine

// Time unit constants.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a deterministic engine for the given seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// ---------------------------------------------------------------------------
// Hardware models
// ---------------------------------------------------------------------------

// Profile describes one RNIC generation (Table III plus the calibrated
// microarchitectural constants the attacks exploit).
type Profile = nic.Profile

// Modelled adapters.
var (
	// CX4 is the ConnectX-4 model (25 Gbps).
	CX4 = nic.CX4
	// CX5 is the ConnectX-5 model (100 Gbps).
	CX5 = nic.CX5
	// CX6 is the ConnectX-6 model (200 Gbps).
	CX6 = nic.CX6
	// CX5ISO is the isolation-hardened ConnectX-5 variant (DWRR egress,
	// per-tenant responder credit pools, no NoC boost).
	CX5ISO = nic.CX5ISO
	// Profiles lists the selectable adapters: the paper's three plus CX5-ISO.
	Profiles = nic.Profiles
	// PaperProfiles lists only the paper's adapters in Table III order.
	PaperProfiles = nic.PaperProfiles
)

// ProfileByName resolves "cx4"/"ConnectX-5"-style names.
func ProfileByName(name string) (Profile, bool) { return nic.ProfileByName(name) }

// HostConfig describes a server host (Table II).
type HostConfig = host.Config

// Table II hosts.
var (
	H1 = host.H1
	H2 = host.H2
	H3 = host.H3
)

// QoSConfig is an mlnx_qos-style ETS configuration.
type QoSConfig = fabric.QoSConfig

// SplitQoS gives two traffic classes 50% each (the paper's microbenchmark
// setup).
func SplitQoS(tcA, tcB int) QoSConfig { return fabric.SplitQoS(tcA, tcB) }

// ---------------------------------------------------------------------------
// Verbs layer
// ---------------------------------------------------------------------------

// Context is a device context (host + RNIC), PD a protection domain, MR a
// registered memory region, QP a reliable-connected queue pair, CQ a
// completion queue — the ibverbs surface of the simulator.
type (
	Context   = verbs.Context
	PD        = verbs.PD
	MR        = verbs.MR
	QP        = verbs.QP
	CQ        = verbs.CQ
	RemoteBuf = verbs.RemoteBuf
)

// Access flags for memory registration.
const (
	AccessLocalWrite   = verbs.AccessLocalWrite
	AccessRemoteRead   = verbs.AccessRemoteRead
	AccessRemoteWrite  = verbs.AccessRemoteWrite
	AccessRemoteAtomic = verbs.AccessRemoteAtomic
)

// ---------------------------------------------------------------------------
// Lab topology
// ---------------------------------------------------------------------------

// Cluster is the standard attack topology: one server shared by N clients.
type Cluster = lab.Cluster

// ClusterConfig parameterises a cluster.
type ClusterConfig = lab.Config

// Conn is a connected client queue pair.
type Conn = lab.Conn

// DefaultClusterConfig mirrors the paper's testbed for a given adapter.
func DefaultClusterConfig(p Profile) ClusterConfig { return lab.DefaultConfig(p) }

// NewCluster builds the topology.
func NewCluster(cfg ClusterConfig) *Cluster { return lab.New(cfg) }

// Topology is a built rig of any shape (Cluster is its legacy alias); the
// builders below add switched multi-host scenarios to the classic pair.
type Topology = lab.Topology

// NewStar puts the server and cfg.Clients hosts behind one shared-buffer
// switch with PFC — the multi-tenant threat model.
func NewStar(cfg ClusterConfig) *Topology { return lab.Star(cfg) }

// NewDualRail dual-homes the server across two switches, clients alternating.
func NewDualRail(cfg ClusterConfig) *Topology { return lab.DualRail(cfg) }

// ---------------------------------------------------------------------------
// ULI measurement (Section IV-C)
// ---------------------------------------------------------------------------

// Prober measures Unit Latency Increase with a sustained queue depth.
type Prober = uli.Prober

// ULISampler measures ULI continuously with timestamps (covert receivers).
type ULISampler = uli.Sampler

// ULISample is one probe observation; ULITrace a mean/percentile summary.
type (
	ULISample = uli.Sample
	ULITrace  = uli.Trace
)

// SummarizeULI reduces samples to mean and 10/90 percentiles, the form the
// paper's figures plot.
func SummarizeULI(samples []ULISample) ULITrace { return uli.Summarize(samples) }

// VerifyULILinearity fits Lat = k*(len_sq+1)+C across queue depths (the
// paper reports Pearson 0.9998).
var VerifyULILinearity = uli.VerifyLinearity

// ---------------------------------------------------------------------------
// Reverse engineering (Section IV)
// ---------------------------------------------------------------------------

// FlowSpec and FlowResult are the fluid contention model's inputs/outputs.
type (
	FlowSpec   = nic.FlowSpec
	FlowResult = nic.FlowResult
)

// Opcodes for FlowSpec.
const (
	OpWrite     = nic.OpWrite
	OpRead      = nic.OpRead
	OpSend      = nic.OpSend
	OpAtomicFAA = nic.OpAtomicFAA
	OpAtomicCAS = nic.OpAtomicCAS
)

// SolveContention computes steady-state bandwidth for concurrent flows
// sharing a server NIC (the Figure 4 engine).
func SolveContention(p Profile, flows []FlowSpec) []FlowResult { return nic.Solve(p, flows) }

// SoloBandwidth is a flow's uncontended allocation.
func SoloBandwidth(p Profile, f FlowSpec) FlowResult { return nic.Solo(p, f) }

// Sweeps behind Figures 4-8. Each takes a trailing workers argument (0 =
// NumCPU, 1 = sequential); results are byte-identical at any worker count
// because every cell derives its RNG stream from (seed, cell identity) —
// see sim.DeriveSeed and DESIGN.md §6.
var (
	PrioritySweep  = revengine.PrioritySweep
	AbsOffsetSweep = revengine.AbsOffsetSweep
	RelOffsetSweep = revengine.RelOffsetSweep
	InterMRSweep   = revengine.InterMRSweep
)

// SweepSpace configures the Grain-I/II sweep; DefaultSweepSpace matches the
// paper's >6000 combinations.
type SweepSpace = revengine.SweepSpace

// DefaultSweepSpace returns the paper-scale parameter grid.
func DefaultSweepSpace() SweepSpace { return revengine.DefaultSweepSpace() }

// ---------------------------------------------------------------------------
// Covert channels (Section V)
// ---------------------------------------------------------------------------

// Bits is a covert payload; ParseBits/RandomBits construct one.
type Bits = bitstream.Bits

// Bit-payload helpers.
var (
	ParseBits  = bitstream.ParseBits
	RandomBits = bitstream.RandomBits
)

// CovertResult is one Table V cell.
type CovertResult = covert.Result

// PriorityChannel is the Grain-I+II ~1 bps channel (Figure 9).
type PriorityChannel = covert.PriorityChannel

// NewPriorityChannel configures the Figure 9 setup for an adapter.
func NewPriorityChannel(p Profile) *PriorityChannel { return covert.NewPriorityChannel(p) }

// ULIChannel is the shared machinery of the Kbps-class channels.
type ULIChannel = covert.ULIChannel

// NewInterMRChannel builds the Grain-III channel (Table V: 31.8/63.6/84.3
// Kbps on CX-4/5/6).
func NewInterMRChannel(p Profile, seed int64) (*ULIChannel, error) {
	return covert.NewInterMRChannel(p, seed)
}

// NewIntraMRChannel builds the Grain-IV address-offset channel.
func NewIntraMRChannel(p Profile, seed int64) (*ULIChannel, error) {
	return covert.NewIntraMRChannel(p, seed)
}

// PythiaChannel is the persistent-channel baseline (~20 Kbps on CX-5).
type PythiaChannel = pythia.Channel

// NewPythiaChannel builds the baseline on a fresh cluster.
func NewPythiaChannel(p Profile, seed int64) (*PythiaChannel, error) {
	return pythia.New(p, seed)
}

// ---------------------------------------------------------------------------
// Side channels (Section VI)
// ---------------------------------------------------------------------------

// MonitorConfig, Detector and Pattern implement Algorithm 1.
type (
	MonitorConfig = sidechan.MonitorConfig
	Detector      = sidechan.Detector
	Pattern       = sidechan.Pattern
)

// Fingerprint verdicts.
const (
	PatternNull      = sidechan.PatternNull
	PatternShuffle   = sidechan.PatternShuffle
	PatternJoin      = sidechan.PatternJoin
	PatternSortMerge = sidechan.PatternSortMerge
)

// Fingerprinting API (Figure 12).
var (
	DefaultMonitorConfig = sidechan.DefaultMonitorConfig
	NewDetector          = sidechan.NewDetector
	Fingerprint          = sidechan.Fingerprint
)

// SnoopConfig and Snooper implement the Figure 13 attack.
type (
	SnoopConfig = sidechan.SnoopConfig
	Snooper     = sidechan.Snooper
	SnoopReport = sidechan.SnoopReport
)

// Snooping API (Figure 13).
var (
	DefaultSnoopConfig = sidechan.DefaultSnoopConfig
	NewSnooper         = sidechan.NewSnooper
	CollectSnoopData   = sidechan.CollectDataset
	RunSnoopAttack     = sidechan.RunSnoopAttack
)

// Dataset and the trace classifiers (the CNN stands in for ResNet18).
type (
	Dataset   = classifier.Dataset
	CNNConfig = classifier.CNNConfig
)

// Classifier API.
var (
	DefaultCNNConfig     = classifier.DefaultCNNConfig
	TrainCNN             = classifier.TrainCNN
	TrainNearestCentroid = classifier.TrainNearestCentroid
	EvaluateClassifier   = classifier.Evaluate
)

// ---------------------------------------------------------------------------
// Defenses (Section VII)
// ---------------------------------------------------------------------------

// Harmonic is the counter-based (Grain-I..III) isolation detector.
type Harmonic = defense.Harmonic

// Defense API.
var (
	TrainHarmonic   = defense.TrainHarmonic
	NoiseMitigation = defense.NoiseMitigation
)

// ---------------------------------------------------------------------------
// Real-world application substrates (Section VI victims)
// ---------------------------------------------------------------------------

// DB is the RDMA-based distributed database (shuffle/join workloads); Row
// its 64 B row; DBPhase a traffic phase of its schedule.
type (
	DB      = appdb.DB
	Row     = appdb.Row
	DBPhase = appdb.Phase
)

// Database API.
var (
	NewDB           = appdb.New
	ShufflePhases   = appdb.ShufflePhases
	JoinPhases      = appdb.JoinPhases
	SortMergePhases = appdb.SortMergePhases
)

// MemoryServer and TreeClient are the Sherman-style disaggregated-memory
// B+ tree (64 B KV entries over RDMA).
type (
	MemoryServer = appdisagg.MemoryServer
	TreeClient   = appdisagg.Client
)

// Disaggregated-memory API.
var (
	NewMemoryServer = appdisagg.NewMemoryServer
	NewTreeClient   = appdisagg.NewClient
)

// TreeValueBytes is the value payload of one 64 B tree entry.
const TreeValueBytes = appdisagg.ValueBytes

// ---------------------------------------------------------------------------
// Telemetry (ethtool / HARMONIC counter view)
// ---------------------------------------------------------------------------

// Snapshot is a counter reading; Sampler records a windowed series.
type (
	Snapshot       = telemetry.Snapshot
	CounterSampler = telemetry.Sampler
)

// Telemetry API.
var (
	Snap           = telemetry.Snap
	SnapshotDelta  = telemetry.Delta
	WindowedDeltas = telemetry.WindowedDeltas
	NewSampler     = telemetry.NewSampler
)

// ConstantTimeMitigation enables the Section VII hardware-partitioning
// defense (worst-case-padded translations) on a NIC.
var ConstantTimeMitigation = defense.ConstantTimeMitigation
